//! Full-disclosure reports.
//!
//! §1: "Each workload produces a single metric for performance at the given
//! scale ... The full disclosure further breaks down the composition of the
//! metric into its constituent parts, e.g. single query execution times."
//! This module renders a [`crate::scheduler::RunReport`] into that
//! disclosure: the headline acceleration factor plus the per-query latency
//! table, the workload composition against the §4 target CPU split
//! (10 % updates / 50 % complex / 40 % short), the steady-state verdict,
//! scheduler accounting, and store counters. [`full_disclosure_json`]
//! emits the same data machine-readable (schema documented in DESIGN.md).

use crate::connector::OpKind;
use crate::scheduler::RunReport;
use snb_obs::Json;
use std::fmt::Write as _;
use std::time::Duration;

/// Steady-state factor used by reports: a later epoch's p99 may exceed the
/// baseline epoch's p99 by at most this factor.
pub const STEADY_FACTOR: f64 = 4.0;

/// Workload-composition summary by operation class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Composition {
    /// Fraction of total execution time spent in updates.
    pub update_share: f64,
    /// Fraction spent in complex reads.
    pub complex_share: f64,
    /// Fraction spent in short reads.
    pub short_share: f64,
}

/// Compute the time-share composition of a run from the exact per-kind
/// time totals.
pub fn composition(report: &RunReport) -> Composition {
    let mut update = 0.0;
    let mut complex = 0.0;
    let mut short = 0.0;
    for kind in report.metrics.kinds() {
        let s = report.metrics.stats(kind).expect("kind has stats");
        let total = s.total.as_secs_f64();
        match kind {
            OpKind::Update(_) => update += total,
            OpKind::Complex(_) => complex += total,
            OpKind::Short(_) => short += total,
        }
    }
    let sum = (update + complex + short).max(f64::MIN_POSITIVE);
    Composition {
        update_share: update / sum,
        complex_share: complex / sum,
        short_share: short / sum,
    }
}

fn kind_label(kind: OpKind) -> String {
    match kind {
        OpKind::Complex(n) => format!("Q{n}"),
        OpKind::Short(n) => format!("S{n}"),
        OpKind::Update(n) => format!("U{n}"),
    }
}

/// Render the full-disclosure report as plain text.
pub fn full_disclosure(report: &RunReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== SNB-Interactive full disclosure ===");
    let _ = writeln!(out, "operations executed:   {}", report.total_ops);
    let _ = writeln!(out, "wall time:             {:?}", report.wall);
    let _ = writeln!(out, "throughput:            {:.0} ops/s", report.ops_per_second);
    let _ = writeln!(
        out,
        "acceleration factor:   {:.2} (simulation time / real time)",
        report.achieved_acceleration
    );
    let _ = writeln!(
        out,
        "steady-state p99:      {}",
        if report.steady { "stable" } else { "DEGRADED" }
    );

    let c = composition(report);
    let _ = writeln!(out, "\ntime composition (target 10% / 50% / 40%):");
    let _ = writeln!(out, "  updates:       {:5.1}%", 100.0 * c.update_share);
    let _ = writeln!(out, "  complex reads: {:5.1}%", 100.0 * c.complex_share);
    let _ = writeln!(out, "  short reads:   {:5.1}%", 100.0 * c.short_share);

    let _ = writeln!(out, "\nper-query breakdown:");
    let _ = writeln!(
        out,
        "  {:<6} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "query", "count", "mean", "p50", "p99", "max"
    );
    for kind in report.metrics.kinds() {
        let s = report.metrics.stats(kind).expect("kind has stats");
        let f = |d: Duration| format!("{:.1?}", d);
        let _ = writeln!(
            out,
            "  {:<6} {:>8} {:>12} {:>12} {:>12} {:>12}",
            kind_label(kind),
            s.count,
            f(s.mean),
            f(s.p50),
            f(s.p99),
            f(s.max)
        );
    }

    let _ = writeln!(out, "\nscheduler (per partition):");
    let _ = writeln!(
        out,
        "  {:<10} {:>8} {:>10} {:>14} {:>10} {:>14}",
        "partition", "ops", "gct waits", "gct wait (µs)", "gct parks", "slippage (µs)"
    );
    for p in &report.partitions {
        let _ = writeln!(
            out,
            "  {:<10} {:>8} {:>10} {:>14} {:>10} {:>14}",
            p.partition, p.ops, p.gct_waits, p.gct_wait_micros, p.gct_parks, p.slippage_micros
        );
    }

    if !report.connector_counters.is_empty() {
        let _ = writeln!(out, "\nstore counters:");
        for (name, value) in &report.connector_counters {
            let _ = writeln!(out, "  {name:<28} {value}");
        }
    }

    // Write-pipeline stage attribution: each histogram's unit is in its
    // name (`_nanos` / `_micros`), so values print raw and stay exact.
    let stages: Vec<_> =
        report.connector_histograms.iter().filter(|(_, h)| !h.is_empty()).collect();
    if !stages.is_empty() {
        let _ = writeln!(out, "\nwrite-pipeline stages and waits:");
        let _ = writeln!(
            out,
            "  {:<32} {:>9} {:>12} {:>12} {:>12} {:>12}",
            "histogram", "count", "mean", "p50", "p99", "max"
        );
        for (name, h) in stages {
            let _ = writeln!(
                out,
                "  {:<32} {:>9} {:>12.0} {:>12} {:>12} {:>12}",
                name,
                h.count,
                h.mean(),
                h.value_at_quantile(0.50),
                h.value_at_quantile(0.99),
                h.max
            );
        }
    }
    out
}

/// Render the full-disclosure report as JSON (schema in DESIGN.md).
pub fn full_disclosure_json(report: &RunReport) -> Json {
    let comp = composition(report);
    // Per-kind epoch verdicts for the complex reads, keyed by kind.
    let verdicts: std::collections::HashMap<OpKind, Vec<crate::metrics::EpochVerdict>> =
        report.metrics.epoch_verdicts(STEADY_FACTOR).into_iter().collect();

    let queries: Vec<Json> = report
        .metrics
        .kinds()
        .into_iter()
        .map(|kind| {
            let s = report.metrics.stats(kind).expect("kind has stats");
            let mut q = Json::obj([
                ("kind", Json::from(kind_label(kind))),
                ("count", Json::from(s.count)),
                ("total_micros", Json::from(s.total.as_micros() as u64)),
                ("mean_micros", Json::from(s.mean.as_micros() as u64)),
                ("p50_micros", Json::from(s.p50.as_micros() as u64)),
                ("p95_micros", Json::from(s.p95.as_micros() as u64)),
                ("p99_micros", Json::from(s.p99.as_micros() as u64)),
                ("max_micros", Json::from(s.max.as_micros() as u64)),
            ]);
            if let Some(profile) = report.metrics.profile(kind) {
                q.push_field(
                    "operators",
                    Json::obj(profile.fields().map(|(name, value)| (name, Json::from(value)))),
                );
            }
            if let Some(epochs) = verdicts.get(&kind) {
                q.push_field(
                    "epochs",
                    Json::arr(epochs.iter().map(|e| {
                        Json::obj([
                            ("epoch", Json::from(e.epoch)),
                            ("count", Json::from(e.count)),
                            ("p99_micros", Json::from(e.p99_micros)),
                            ("steady", Json::from(e.ok)),
                        ])
                    })),
                );
            }
            q
        })
        .collect();

    let partitions = Json::arr(report.partitions.iter().map(|p| {
        Json::obj([
            ("partition", Json::from(p.partition)),
            ("ops", Json::from(p.ops)),
            ("gct_waits", Json::from(p.gct_waits)),
            ("gct_wait_micros", Json::from(p.gct_wait_micros)),
            ("gct_parks", Json::from(p.gct_parks)),
            ("slippage_micros", Json::from(p.slippage_micros)),
            ("window_batches", Json::from(p.window_batches)),
        ])
    }));

    let store_counters = Json::obj(
        report.connector_counters.iter().map(|(name, value)| (name.clone(), Json::from(*value))),
    );

    // Schema v2: full stage/wait histogram snapshots, keyed by name. The
    // unit is part of the name (`_nanos` / `_micros`); buckets are
    // `[low, high, count]` triples so a consumer can re-derive any
    // quantile or merge runs.
    let stage_histograms = Json::obj(report.connector_histograms.iter().map(|(name, h)| {
        (
            name.clone(),
            Json::obj([
                ("count", Json::from(h.count)),
                ("sum", Json::from(h.sum)),
                ("mean", Json::from(h.mean())),
                ("p50", Json::from(h.value_at_quantile(0.50))),
                ("p95", Json::from(h.value_at_quantile(0.95))),
                ("p99", Json::from(h.value_at_quantile(0.99))),
                ("max", Json::from(h.max)),
                (
                    "buckets",
                    Json::arr(h.buckets.iter().map(|&(low, high, count)| {
                        Json::arr([Json::from(low), Json::from(high), Json::from(count)])
                    })),
                ),
            ]),
        )
    }));

    Json::obj([
        ("schema_version", Json::from(2u64)),
        ("benchmark", Json::from("ldbc-snb-interactive")),
        ("total_ops", Json::from(report.total_ops)),
        ("wall_micros", Json::from(report.wall.as_micros() as u64)),
        ("ops_per_second", Json::from(report.ops_per_second)),
        ("sim_span_millis", Json::from(report.sim_span_millis)),
        ("achieved_acceleration", Json::from(report.achieved_acceleration)),
        ("steady", Json::from(report.steady)),
        ("steady_factor", Json::from(STEADY_FACTOR)),
        (
            "composition",
            Json::obj([
                ("update_share", Json::from(comp.update_share)),
                ("complex_share", Json::from(comp.complex_share)),
                ("short_share", Json::from(comp.short_share)),
            ]),
        ),
        ("queries", Json::Arr(queries)),
        ("scheduler", Json::obj([("partitions", partitions)])),
        ("store_counters", store_counters),
        ("stage_histograms", stage_histograms),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connector::StoreConnector;
    use crate::mix;
    use crate::scheduler::{run, DriverConfig};
    use snb_queries::Engine;
    use std::sync::Arc;

    fn sample_report() -> RunReport {
        let ds =
            snb_datagen::generate(snb_datagen::GeneratorConfig::with_persons(300).activity(0.3))
                .unwrap();
        let bindings = snb_params::curated_bindings(&ds, 6);
        let items = mix::build_mix(&ds, &bindings);
        let store = Arc::new(snb_store::Store::new());
        store.bulk_load(&ds);
        let conn = StoreConnector::new(store, Engine::Intended);
        run(&items, &conn, &DriverConfig::default()).unwrap()
    }

    #[test]
    fn composition_shares_sum_to_one() {
        let report = sample_report();
        let c = composition(&report);
        assert!((c.update_share + c.complex_share + c.short_share - 1.0).abs() < 1e-9);
        assert!(c.update_share > 0.0);
        assert!(c.complex_share > 0.0);
        assert!(c.short_share > 0.0);
    }

    #[test]
    fn disclosure_contains_all_sections() {
        let report = sample_report();
        let text = full_disclosure(&report);
        assert!(text.contains("full disclosure"));
        assert!(text.contains("acceleration factor"));
        assert!(text.contains("time composition"));
        assert!(text.contains("per-query breakdown"));
        assert!(text.contains("scheduler (per partition)"));
        assert!(text.contains("store counters"));
        assert!(text.contains("store.txn.commits"));
        assert!(text.contains("write-pipeline stages"));
        assert!(text.contains("store.stage.apply_nanos"));
        // At least one of each class appears in the table.
        assert!(text.contains("Q8"), "complex reads missing:\n{text}");
        assert!(text.contains("U6"), "updates missing:\n{text}");
        assert!(text.contains("S1") || text.contains("S2"), "short reads missing");
    }

    #[test]
    fn json_disclosure_is_machine_readable() {
        let report = sample_report();
        let json = full_disclosure_json(&report);
        let text = json.render_pretty(2);
        assert!(text.contains("\"benchmark\": \"ldbc-snb-interactive\""));
        assert!(text.contains("\"queries\""));
        assert!(text.contains("\"operators\""));
        assert!(text.contains("\"rows_scanned\""));
        assert!(text.contains("\"store.mvcc.versions_walked\""));
        assert!(text.contains("\"gct_wait_micros\""));
        assert!(text.contains("\"schema_version\": 2"));
        assert!(text.contains("\"stage_histograms\""));
        assert!(text.contains("\"store.stage.publish_wait_nanos\""));
        assert!(text.contains("\"store.wal.fsync_micros\""));
        // The acceptance bar: at least 5 complex queries report non-zero
        // operator counters in the disclosure.
        let with_operators = report
            .metrics
            .kinds()
            .into_iter()
            .filter(|k| matches!(k, OpKind::Complex(_)))
            .filter(|&k| report.metrics.profile(k).is_some_and(|p| !p.is_zero()))
            .count();
        assert!(
            with_operators >= 5,
            "expected >=5 complex kinds with operator counters, got {with_operators}"
        );
    }
}
