//! Dependency tracking — Local and Global Dependency Services (Fig. 7).
//!
//! The driver "tracks the latest point in time behind which every operation
//! has completed; every operation (i.e., dependency) with T_DUE lower or
//! equal to this time is guaranteed to have completed execution. This is
//! achieved by maintaining a monotonically increasing timestamp variable
//! called Global Completion Time (T_GC)".
//!
//! Per stream, a [`Lds`] maintains Initiated Times (IT) and Completed Times
//! (CT) and exposes Local Initiation Time (`T_LI`, the lowest timestamp in
//! IT, or the last known lowest if IT is empty — adds are monotone, so no
//! lower value can appear later) and Local Completion Time (`T_LC`, the
//! highest completed time below `T_LI`). The [`Gds`] aggregates: `T_GI` is
//! the minimum `T_LI`, and `T_GC` the maximum `T_LC` strictly below `T_GI`;
//! exposing `T_LI`/`T_GI` is what lets `T_GC` advance as early as possible
//! and makes the service composable hierarchically.

use parking_lot::Mutex;
use snb_core::time::SimTime;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Sentinel a finished stream advances to so it never holds `T_GC` back.
pub const STREAM_END: SimTime = SimTime(i64::MAX / 2);

/// Wakeup channel for threads blocked on GCT advancement.
///
/// Every [`Lds`] state change that can move `T_GC` (initiations raising
/// `T_LI`, completions, finish/abandon) notifies the signal its [`Gds`]
/// shares with all streams, so a partition blocked in the Fig. 8 dependency
/// loop parks on a condvar instead of burning a core — on small machines a
/// spinning waiter starves the very partitions whose completions it waits
/// for. Notification is skipped entirely while nobody waits (one relaxed
/// load on the completion hot path), and waiters recheck their predicate
/// under the lock plus wake on a short timeout, so a lost wakeup can only
/// delay, never deadlock.
///
/// With the store's global write latch replaced by striped per-shard locks
/// (PR 5), completions arrive from many writer threads at once and every
/// one of them rings this signal. A `notify_all` per completion then turns
/// into a wake-up storm: all `P` parked partitions wake, contend on the
/// signal lock, recheck, and most re-park — `O(P)` futile wakes per
/// completion, quadratic scheduler churn overall. [`WakeSignal::notify`]
/// therefore wakes at most [`MAX_WAKE_BATCH`] waiters; since GCT is a
/// single monotone frontier, waiters become ready in due-time order and a
/// small batch almost always contains the one that can make progress. Any
/// waiter left out is covered twice over: the woken waiters' own state
/// changes re-notify, and `wait_until`'s timeout cap bounds the stall even
/// if no further notification arrives. Teardown paths use
/// [`WakeSignal::notify_all`], which really does wake everyone — an
/// aborting run wants every partition to observe the abort flag now, not
/// after a timeout ladder.
#[derive(Debug, Default)]
pub struct WakeSignal {
    waiters: AtomicUsize,
    /// Condvar waits performed (observability: proves waiters park rather
    /// than spin).
    parks: AtomicU64,
    /// Wake-ups suppressed by the batch cap (observability: how much
    /// thundering herd the cap absorbed).
    capped_wakes: AtomicU64,
    lock: std::sync::Mutex<()>,
    cond: std::sync::Condvar,
}

/// Most waiters woken by a single [`WakeSignal::notify`] call.
pub const MAX_WAKE_BATCH: usize = 4;

impl WakeSignal {
    /// Wake up to [`MAX_WAKE_BATCH`] parked waiters. Cheap (one atomic
    /// load) when nobody waits.
    pub fn notify(&self) {
        let waiting = self.waiters.load(Ordering::SeqCst);
        if waiting == 0 {
            return;
        }
        let _g = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        if waiting > MAX_WAKE_BATCH {
            self.capped_wakes.fetch_add((waiting - MAX_WAKE_BATCH) as u64, Ordering::Relaxed);
        }
        for _ in 0..waiting.min(MAX_WAKE_BATCH) {
            self.cond.notify_one();
        }
    }

    /// Wake **every** parked waiter, bypassing the batch cap. For teardown
    /// (abort, shutdown) where all waiters must re-check a flag promptly.
    pub fn notify_all(&self) {
        if self.waiters.load(Ordering::SeqCst) == 0 {
            return;
        }
        let _g = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        self.cond.notify_all();
    }

    /// Park until notified or `cap` elapses, unless `ready()` already holds
    /// (rechecked under the lock, closing the check-then-sleep race).
    pub fn wait_until(&self, ready: impl Fn() -> bool, cap: Duration) {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let g = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        if !ready() {
            self.parks.fetch_add(1, Ordering::Relaxed);
            let _ = self.cond.wait_timeout(g, cap).unwrap_or_else(|e| e.into_inner());
        }
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// Number of times a waiter actually parked on the condvar.
    pub fn parks(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }

    /// Number of wake-ups the batch cap suppressed.
    pub fn capped_wakes(&self) -> u64 {
        self.capped_wakes.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct LdsInner {
    /// Initiated, not yet completed times (multiset: windowed execution may
    /// initiate several operations with equal due times).
    it: BTreeMap<i64, u32>,
    /// Completed times awaiting inclusion in `tlc` (pruned as `tlc` moves).
    ct: std::collections::BinaryHeap<std::cmp::Reverse<i64>>,
    /// Highest time ever added to IT (adds must be monotone).
    last_added: i64,
}

/// Local Dependency Service: per-stream IT/CT tracking.
#[derive(Debug)]
pub struct Lds {
    inner: Mutex<LdsInner>,
    /// Cached `T_LI` for lock-free reads by the GDS.
    tli: AtomicI64,
    /// Cached `T_LC`.
    tlc: AtomicI64,
    /// Shared with the owning [`Gds`]: notified on every state change so
    /// GCT waiters can park instead of spinning.
    signal: Arc<WakeSignal>,
}

impl Default for Lds {
    fn default() -> Self {
        Lds::new()
    }
}

impl Lds {
    /// Fresh service; `T_LI`/`T_LC` start at 0 (before all simulation time).
    pub fn new() -> Lds {
        Lds::with_signal(Arc::new(WakeSignal::default()))
    }

    /// A service whose state changes notify `signal` (used by [`Gds`] to
    /// share one wakeup channel across all streams).
    pub fn with_signal(signal: Arc<WakeSignal>) -> Lds {
        Lds {
            inner: Mutex::new(LdsInner::default()),
            tli: AtomicI64::new(0),
            tlc: AtomicI64::new(0),
            signal,
        }
    }

    /// `T_LI`.
    #[inline]
    pub fn tli(&self) -> SimTime {
        SimTime(self.tli.load(Ordering::Acquire))
    }

    /// `T_LC`.
    #[inline]
    pub fn tlc(&self) -> SimTime {
        SimTime(self.tlc.load(Ordering::Acquire))
    }

    /// Add `t` to IT. Times must be added in monotonically non-decreasing
    /// order (the stream is due-time sorted).
    pub fn initiate(&self, t: SimTime) {
        let mut g = self.inner.lock();
        debug_assert!(
            t.millis() >= g.last_added,
            "IT additions must be monotone: {} after {}",
            t.millis(),
            g.last_added
        );
        g.last_added = t.millis();
        *g.it.entry(t.millis()).or_insert(0) += 1;
        self.refresh(&mut g);
    }

    /// Move `t` from IT to CT (any order).
    pub fn complete(&self, t: SimTime) {
        let mut g = self.inner.lock();
        match g.it.get_mut(&t.millis()) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                g.it.remove(&t.millis());
            }
            None => panic!("complete() without matching initiate({t})"),
        }
        g.ct.push(std::cmp::Reverse(t.millis()));
        self.refresh(&mut g);
    }

    /// Mark the stream exhausted: `T_LI` jumps to [`STREAM_END`].
    pub fn finish(&self) {
        let mut g = self.inner.lock();
        debug_assert!(g.it.is_empty(), "finish() with operations in flight");
        g.last_added = STREAM_END.millis();
        self.tli.store(STREAM_END.millis(), Ordering::Release);
        self.refresh(&mut g);
    }

    /// Abort-path variant of [`Lds::finish`]: drop any in-flight initiated
    /// operations and jump to [`STREAM_END`]. A failed partition may die
    /// between `initiate` and `complete`; keeping its IT entry would pin
    /// `T_GI` forever and deadlock every other partition waiting on the
    /// GCT, while asserting emptiness (as `finish` does) would panic on a
    /// path where the run is already being torn down.
    pub fn abandon(&self) {
        let mut g = self.inner.lock();
        g.it.clear();
        g.last_added = STREAM_END.millis();
        self.tli.store(STREAM_END.millis(), Ordering::Release);
        self.refresh(&mut g);
    }

    fn refresh(&self, g: &mut LdsInner) {
        // T_LI: lowest initiated time, or the last known lowest (adds are
        // monotone, so `last_added` is a valid floor once IT drains).
        let tli = g.it.keys().next().copied().unwrap_or(g.last_added);
        self.tli.store(tli, Ordering::Release);
        // T_LC: highest completed time strictly below T_LI. Completed times
        // at or above T_LI stay queued; anything below can be consumed
        // because every earlier operation has completed.
        let mut tlc = self.tlc.load(Ordering::Relaxed);
        while let Some(&std::cmp::Reverse(c)) = g.ct.peek() {
            if c < tli {
                tlc = tlc.max(c);
                g.ct.pop();
            } else {
                break;
            }
        }
        self.tlc.store(tlc, Ordering::Release);
        // State published; wake anyone parked on GCT advancement. (Both the
        // stores above and this notify happen before the waiter re-acquires
        // the signal lock, so its predicate recheck sees the new values.)
        self.signal.notify();
    }
}

/// Global Dependency Service: aggregates the per-stream services.
#[derive(Debug)]
pub struct Gds {
    streams: Vec<Arc<Lds>>,
    /// Monotone cache of the published `T_GC`. The raw Fig. 7 expression
    /// can transiently *decrease* when a stream's `T_LC` overtakes `T_GI`
    /// and leaves the filtered max; any previously published value remains
    /// a valid completion point (completions never undo), so we publish the
    /// running maximum, keeping the guaranteed monotonicity.
    gct_cache: AtomicI64,
    /// One wakeup channel shared by every stream's [`Lds`].
    signal: Arc<WakeSignal>,
}

impl Gds {
    /// Build over `n` fresh streams.
    pub fn new(n: usize) -> Gds {
        let signal = Arc::new(WakeSignal::default());
        Gds {
            streams: (0..n).map(|_| Arc::new(Lds::with_signal(Arc::clone(&signal)))).collect(),
            gct_cache: AtomicI64::new(0),
            signal,
        }
    }

    /// The per-stream services.
    pub fn stream(&self, i: usize) -> &Arc<Lds> {
        &self.streams[i]
    }

    /// The wakeup channel GCT waiters park on. Notified whenever any
    /// stream's state changes; callers tearing the run down (abort) should
    /// notify it explicitly so waiters re-check their abort flag promptly.
    pub fn signal(&self) -> &Arc<WakeSignal> {
        &self.signal
    }

    /// `T_GI`: the lowest `T_LI` across streams.
    pub fn tgi(&self) -> SimTime {
        self.streams.iter().map(|l| l.tli()).min().unwrap_or(STREAM_END)
    }

    /// `T_GC`: the highest `T_LC` strictly below `T_GI` — every operation
    /// with a due time at or below it has completed, across all streams.
    pub fn gct(&self) -> SimTime {
        let tgi = self.tgi();
        let raw = self
            .streams
            .iter()
            .map(|l| l.tlc())
            .filter(|&tlc| tlc < tgi)
            .max()
            .unwrap_or(SimTime(0));
        self.gct_cache.fetch_max(raw.millis(), Ordering::AcqRel);
        SimTime(self.gct_cache.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stream_progression() {
        let gds = Gds::new(1);
        let s = gds.stream(0).clone();
        s.initiate(SimTime(10));
        assert_eq!(s.tli(), SimTime(10));
        assert_eq!(gds.gct(), SimTime(0), "nothing completed yet");
        s.initiate(SimTime(20));
        s.complete(SimTime(10));
        // 10 completed and T_LI is now 20 -> GCT reaches 10.
        assert_eq!(s.tlc(), SimTime(10));
        assert_eq!(gds.gct(), SimTime(10));
        s.complete(SimTime(20));
        s.finish();
        assert_eq!(gds.gct(), SimTime(20));
    }

    #[test]
    fn out_of_order_completion() {
        let gds = Gds::new(1);
        let s = gds.stream(0).clone();
        for t in [10, 20, 30] {
            s.initiate(SimTime(t));
        }
        // Completing later ops first must not advance TLC past in-flight 10.
        s.complete(SimTime(30));
        s.complete(SimTime(20));
        assert_eq!(s.tlc(), SimTime(0));
        s.complete(SimTime(10));
        // All done; TLI = last added (30), so 20 < 30 counts; 30 itself only
        // after finish().
        assert_eq!(s.tlc(), SimTime(20));
        s.finish();
        assert_eq!(s.tlc(), SimTime(30));
    }

    #[test]
    fn gct_is_min_across_streams() {
        let gds = Gds::new(2);
        let a = gds.stream(0).clone();
        let b = gds.stream(1).clone();
        a.initiate(SimTime(10));
        b.initiate(SimTime(5));
        a.complete(SimTime(10));
        a.initiate(SimTime(50));
        // Stream b still holds T_GI at 5, so GCT cannot pass it.
        assert_eq!(gds.gct(), SimTime(0));
        b.complete(SimTime(5));
        b.initiate(SimTime(40));
        // Now T_GI = 40, both 5 and 10 completed -> GCT = 10.
        assert_eq!(gds.gct(), SimTime(10));
    }

    #[test]
    fn finished_streams_do_not_block() {
        let gds = Gds::new(2);
        let a = gds.stream(0).clone();
        let b = gds.stream(1).clone();
        b.finish(); // empty stream
        a.initiate(SimTime(7));
        a.complete(SimTime(7));
        a.finish();
        assert_eq!(gds.gct(), SimTime(7));
    }

    #[test]
    fn equal_due_times_are_tracked_as_multiset() {
        let gds = Gds::new(1);
        let s = gds.stream(0).clone();
        s.initiate(SimTime(10));
        s.initiate(SimTime(10));
        s.complete(SimTime(10));
        // One instance still in flight: TLI must stay at 10.
        assert_eq!(s.tli(), SimTime(10));
        assert_eq!(s.tlc(), SimTime(0));
        s.complete(SimTime(10));
        s.finish();
        assert_eq!(s.tlc(), SimTime(10));
    }

    #[test]
    fn gct_is_monotone_under_concurrency() {
        // Hammer a 4-stream GDS from 4 threads; observe GCT never goes
        // backwards and ends at the max due time.
        let gds = Arc::new(Gds::new(4));
        let observed = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            for s in 0..4 {
                let gds = Arc::clone(&gds);
                scope.spawn(move || {
                    let lds = gds.stream(s).clone();
                    for i in 0..500i64 {
                        let t = SimTime(i * 4 + s as i64 + 1);
                        lds.initiate(t);
                        lds.complete(t);
                    }
                    lds.finish();
                });
            }
            let gds2 = Arc::clone(&gds);
            let observed = Arc::clone(&observed);
            scope.spawn(move || {
                let mut last = SimTime(0);
                for _ in 0..2_000 {
                    let g = gds2.gct();
                    assert!(g >= last, "GCT went backwards: {g} < {last}");
                    last = g;
                    observed.lock().push(g);
                    std::hint::spin_loop();
                }
            });
        });
        assert_eq!(gds.gct(), SimTime(2000));
    }
}

/// What a GDS aggregates over. "The rationale for exposing T_GI is to make
/// GDS composable. That is, a GDS instance could track other GDS instances
/// in the same manner as it tracks LDS instances, enabling dependency
/// tracking in a hierarchical/distributed setting" (§4.2). An [`Lds`]
/// exposes `T_LI`/`T_LC`; a [`Gds`] exposes `T_GI`/`T_GC` in the same
/// roles.
pub trait DependencyNode: Send + Sync {
    /// Initiation floor: no operation below this time will start later.
    fn initiation_time(&self) -> SimTime;
    /// Completion ceiling: every operation at or below this time completed.
    fn completion_time(&self) -> SimTime;
}

impl DependencyNode for Lds {
    fn initiation_time(&self) -> SimTime {
        self.tli()
    }
    fn completion_time(&self) -> SimTime {
        self.tlc()
    }
}

impl DependencyNode for Gds {
    fn initiation_time(&self) -> SimTime {
        self.tgi()
    }
    fn completion_time(&self) -> SimTime {
        self.gct()
    }
}

/// A dependency service over arbitrary child nodes — LDS instances, whole
/// GDS instances (one per driver machine in the paper's planned multi-node
/// deployment), or a mix.
pub struct HierarchicalGds {
    children: Vec<Arc<dyn DependencyNode>>,
    gct_cache: AtomicI64,
}

impl HierarchicalGds {
    /// Aggregate the given children.
    pub fn new(children: Vec<Arc<dyn DependencyNode>>) -> HierarchicalGds {
        HierarchicalGds { children, gct_cache: AtomicI64::new(0) }
    }

    /// Global initiation time across children.
    pub fn tgi(&self) -> SimTime {
        self.children.iter().map(|c| c.initiation_time()).min().unwrap_or(STREAM_END)
    }

    /// Global completion time across children (monotone, like [`Gds::gct`]).
    pub fn gct(&self) -> SimTime {
        let tgi = self.tgi();
        let raw = self
            .children
            .iter()
            .map(|c| c.completion_time())
            .filter(|&t| t < tgi)
            .max()
            .unwrap_or(SimTime(0));
        self.gct_cache.fetch_max(raw.millis(), Ordering::AcqRel);
        SimTime(self.gct_cache.load(Ordering::Acquire))
    }
}

impl DependencyNode for HierarchicalGds {
    fn initiation_time(&self) -> SimTime {
        self.tgi()
    }
    fn completion_time(&self) -> SimTime {
        self.gct()
    }
}

#[cfg(test)]
mod hierarchy_tests {
    use super::*;

    /// Drive the same four streams flat and as a 2x2 hierarchy; the
    /// hierarchical GCT must never exceed the flat one (it is conservative)
    /// and must converge to the same final value.
    #[test]
    fn hierarchical_tracking_is_safe_and_converges() {
        let flat = Gds::new(4);
        let left = Arc::new(Gds::new(2));
        let right = Arc::new(Gds::new(2));
        let top = HierarchicalGds::new(vec![
            Arc::clone(&left) as Arc<dyn DependencyNode>,
            Arc::clone(&right) as Arc<dyn DependencyNode>,
        ]);

        let schedule = [(0usize, 10i64), (1, 12), (2, 14), (3, 16), (0, 20), (2, 24)];
        for &(stream, t) in &schedule {
            let (sub, local) = if stream < 2 { (&left, stream) } else { (&right, stream - 2) };
            flat.stream(stream).initiate(SimTime(t));
            sub.stream(local).initiate(SimTime(t));
        }
        for &(stream, t) in &schedule {
            let (sub, local) = if stream < 2 { (&left, stream) } else { (&right, stream - 2) };
            flat.stream(stream).complete(SimTime(t));
            sub.stream(local).complete(SimTime(t));
            assert!(top.gct() <= flat.gct(), "hierarchy overshot: {} > {}", top.gct(), flat.gct());
        }
        for s in 0..4 {
            flat.stream(s).finish();
        }
        for s in 0..2 {
            left.stream(s).finish();
            right.stream(s).finish();
        }
        assert_eq!(top.gct(), flat.gct());
        assert_eq!(top.gct(), SimTime(24));
    }

    #[test]
    fn three_level_hierarchy_composes() {
        let leaf = Arc::new(Gds::new(1));
        let mid =
            Arc::new(HierarchicalGds::new(vec![Arc::clone(&leaf) as Arc<dyn DependencyNode>]));
        let top = HierarchicalGds::new(vec![Arc::clone(&mid) as Arc<dyn DependencyNode>]);
        leaf.stream(0).initiate(SimTime(5));
        leaf.stream(0).complete(SimTime(5));
        leaf.stream(0).finish();
        assert_eq!(top.gct(), SimTime(5));
    }
}
