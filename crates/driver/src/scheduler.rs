//! The parallel workload scheduler (§4.2, "Stream Execution Modes",
//! "Windowed Execution", "Scalable Dependent Execution").
//!
//! The workload is split into partitions by each item's partition hint
//! (forum id for forum-tree operations — the Sequential mode insight that
//! "posts and likes only depend on other posts from the same forum"; person
//! id for person-stream operations and reads). Each partition executes its
//! items in due-time order on its own thread; cross-partition dependencies
//! are enforced by waiting on the GDS's Global Completion Time, exactly the
//! dependent-execution loop of the paper's Fig. 8.

use crate::connector::{Connector, OpKind, Operation};
use crate::dependency::Gds;
use crate::metrics::{KindRecorder, Metrics};
use crate::mix::WorkItem;
use parking_lot::Mutex;
use snb_core::rng::{Rng, Stream};
use snb_core::time::SimTime;
use snb_core::{SnbError, SnbResult};
use snb_obs::trace::{self, NameId};
use snb_obs::{HistogramSnapshot, QueryProfile};
use snb_queries::params::ShortQuery;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How operations are scheduled within a partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecutionMode {
    /// Fig. 8 loop: per-operation GCT synchronization.
    Parallel,
    /// Windowed Execution: operations are grouped into fixed windows of
    /// simulation time; the GCT is consulted once per window. Requires the
    /// window to be at most the dataset's `T_SAFE` (enforced by clamping).
    Windowed {
        /// Window length in simulation milliseconds.
        window_millis: i64,
    },
}

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Number of parallel partitions (streams).
    pub partitions: usize,
    /// Acceleration factor: simulation time advanced per unit of real time.
    /// `None` replays as fast as possible (throughput mode).
    pub acceleration: Option<f64>,
    /// Scheduling mode.
    pub mode: ExecutionMode,
    /// `P`: probability of starting/continuing the short-read random walk
    /// after a complex read (§4, "Simple read-only queries").
    pub short_read_prob: f64,
    /// `Δ`: how much the probability decreases at every step of the walk.
    pub short_read_decay: f64,
    /// Seed for the (deterministic) short-read walks.
    pub seed: u64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            partitions: 4,
            acceleration: None,
            mode: ExecutionMode::Parallel,
            short_read_prob: 0.6,
            short_read_decay: 0.15,
            seed: 1,
        }
    }
}

/// Scheduler-side runtime accounting for one partition thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionStats {
    /// Partition index.
    pub partition: usize,
    /// Operations this partition executed (including walk short reads).
    pub ops: u64,
    /// Times the partition blocked on the Fig. 8 GCT loop.
    pub gct_waits: u64,
    /// Total wall time spent blocked on the GCT, in microseconds.
    pub gct_wait_micros: u64,
    /// Condvar parks inside GCT waits: long waits escalate from a brief
    /// spin/yield to parking on the GDS wake signal, so a blocked partition
    /// does not burn a core while its dependency is paced far in the
    /// future.
    pub gct_parks: u64,
    /// Schedule slippage under pacing: accumulated lateness of operations
    /// against their due time, in microseconds (0 in throughput mode).
    pub slippage_micros: u64,
    /// Windows executed (windowed mode only).
    pub window_batches: u64,
}

/// Result of a benchmark run.
#[derive(Debug)]
pub struct RunReport {
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Operations executed (updates + complex + short reads).
    pub total_ops: usize,
    /// Per-kind latency statistics.
    pub metrics: Metrics,
    /// Throughput in operations per second.
    pub ops_per_second: f64,
    /// Simulation span covered (millis).
    pub sim_span_millis: i64,
    /// Achieved acceleration: simulation time / real time.
    pub achieved_acceleration: f64,
    /// Whether complex-read p99 latencies stayed stable (steady state),
    /// judged per wall-clock epoch.
    pub steady: bool,
    /// Per-partition scheduler accounting, sorted by partition index.
    pub partitions: Vec<PartitionStats>,
    /// Connector-side runtime counters (e.g. the store's MVCC/WAL
    /// counters), captured when the run finished.
    pub connector_counters: Vec<(String, u64)>,
    /// Connector-side latency distributions (write-pipeline stage
    /// histograms, WAL fsync, stripe waits), captured when the run
    /// finished. Full snapshots, so the disclosure report can print
    /// per-stage percentiles and attribute contention.
    pub connector_histograms: Vec<(String, HistogramSnapshot)>,
}

/// Root span names for every operation kind, interned once. `span!` needs
/// `&'static str` names, and `OpKind` is numeric, so the tables are spelled
/// out; indexed by 1-based query number.
fn op_span_name(kind: OpKind) -> &'static NameId {
    static COMPLEX: [NameId; 14] = [
        NameId::new("op.Q1"),
        NameId::new("op.Q2"),
        NameId::new("op.Q3"),
        NameId::new("op.Q4"),
        NameId::new("op.Q5"),
        NameId::new("op.Q6"),
        NameId::new("op.Q7"),
        NameId::new("op.Q8"),
        NameId::new("op.Q9"),
        NameId::new("op.Q10"),
        NameId::new("op.Q11"),
        NameId::new("op.Q12"),
        NameId::new("op.Q13"),
        NameId::new("op.Q14"),
    ];
    static SHORT: [NameId; 7] = [
        NameId::new("op.S1"),
        NameId::new("op.S2"),
        NameId::new("op.S3"),
        NameId::new("op.S4"),
        NameId::new("op.S5"),
        NameId::new("op.S6"),
        NameId::new("op.S7"),
    ];
    static UPDATE: [NameId; 8] = [
        NameId::new("op.U1"),
        NameId::new("op.U2"),
        NameId::new("op.U3"),
        NameId::new("op.U4"),
        NameId::new("op.U5"),
        NameId::new("op.U6"),
        NameId::new("op.U7"),
        NameId::new("op.U8"),
    ];
    static OTHER: NameId = NameId::new("op.other");
    let (table, n): (&'static [NameId], usize) = match kind {
        OpKind::Complex(n) => (&COMPLEX, n),
        OpKind::Short(n) => (&SHORT, n),
        OpKind::Update(n) => (&UPDATE, n),
    };
    n.checked_sub(1).and_then(|i| table.get(i)).unwrap_or(&OTHER)
}

static SPAN_GCT_WAIT: NameId = NameId::new("driver.gct_wait");
static SPAN_PACE: NameId = NameId::new("driver.pace");
static SPAN_EXECUTE: NameId = NameId::new("driver.execute");

/// Execute a workload against a connector.
pub fn run(
    items: &[WorkItem],
    connector: &dyn Connector,
    config: &DriverConfig,
) -> SnbResult<RunReport> {
    if items.is_empty() {
        return Err(SnbError::Config("empty workload".into()));
    }
    let partitions = config.partitions.max(1);
    let queues = partition_items(items, partitions);
    // Derive the simulation origin from the *minimum* due time, not the
    // first item: an unsorted workload would otherwise make
    // `due.since(sim_start)` negative, silently corrupting pacing targets
    // and (via truncating division) windowed-mode window indices.
    let sim_start = items.iter().map(|w| w.due).min().unwrap();
    let sim_end = items.iter().map(|w| w.due).max().unwrap();
    debug_assert!(
        queues.iter().all(|q| q.windows(2).all(|w| w[0].due <= w[1].due)),
        "partition queues must be due-ordered"
    );

    let gds = Gds::new(partitions);
    let metrics = Metrics::new();
    let abort = AtomicBool::new(false);
    let first_error: Mutex<Option<SnbError>> = Mutex::new(None);
    let partition_stats: Mutex<Vec<PartitionStats>> = Mutex::new(Vec::new());
    let start = Instant::now();

    std::thread::scope(|scope| {
        for (pi, queue) in queues.into_iter().enumerate() {
            let gds = &gds;
            let metrics = &metrics;
            let abort = &abort;
            let first_error = &first_error;
            let partition_stats = &partition_stats;
            let config = config.clone();
            scope.spawn(move || {
                let worker = Worker {
                    lds: gds.stream(pi).clone(),
                    gds,
                    connector,
                    config: &config,
                    sim_start,
                    start,
                    abort,
                    metrics,
                    recorders: HashMap::new(),
                    stats: PartitionStats {
                        partition: pi,
                        ops: 0,
                        gct_waits: 0,
                        gct_wait_micros: 0,
                        gct_parks: 0,
                        slippage_micros: 0,
                        window_batches: 0,
                    },
                    walk_counter: (pi as u64) << 40,
                };
                if let Err(e) = worker.run(queue, partition_stats) {
                    abort.store(true, Ordering::Release);
                    first_error.lock().get_or_insert(e);
                    // Waiters park on the GCT signal; wake ALL of them
                    // (bypassing the wake-batch cap) so every partition
                    // observes the abort flag instead of sleeping out its
                    // timeout.
                    gds.signal().notify_all();
                }
            });
        }
    });

    if let Some(e) = first_error.into_inner() {
        return Err(e);
    }
    let wall = start.elapsed();
    let total_ops = metrics.total_ops();
    let sim_span_millis = sim_end.since(sim_start);
    let steady = metrics.complex_reads_steady(4.0);
    let mut partitions = partition_stats.into_inner();
    partitions.sort_by_key(|s| s.partition);
    Ok(RunReport {
        wall,
        total_ops,
        ops_per_second: total_ops as f64 / wall.as_secs_f64().max(1e-9),
        sim_span_millis,
        // Simulation millis over wall millis, both as f64: truncating the
        // wall to whole milliseconds (and clamping to 1) distorted the
        // ratio by up to 1000x for sub-millisecond runs.
        achieved_acceleration: sim_span_millis as f64 / (wall.as_secs_f64() * 1e3).max(1e-6),
        metrics,
        steady,
        partitions,
        connector_counters: connector.counters(),
        connector_histograms: connector.histograms(),
    })
}

/// Assign whole streams (equal partition hints) to partitions with greedy
/// least-loaded (LPT) packing: per-forum operation counts are power-law
/// skewed, so plain `hint % partitions` leaves one partition with most of
/// the work and throughput stops scaling. Streams stay intact (intra-forum
/// causality) and each queue stays due-ordered.
fn partition_items(items: &[WorkItem], partitions: usize) -> Vec<Vec<&WorkItem>> {
    use std::collections::HashMap;
    let mut groups: HashMap<u64, Vec<&WorkItem>> = HashMap::new();
    for item in items {
        groups.entry(item.partition_hint).or_default().push(item);
    }
    let mut sized: Vec<(u64, Vec<&WorkItem>)> = groups.into_iter().collect();
    // Largest streams first; hint as deterministic tie-break.
    sized.sort_by_key(|(hint, g)| (std::cmp::Reverse(g.len()), *hint));
    let mut queues: Vec<Vec<&WorkItem>> = vec![Vec::new(); partitions];
    for (_, group) in sized {
        let target = (0..partitions).min_by_key(|&i| queues[i].len()).unwrap();
        queues[target].extend(group);
    }
    for q in &mut queues {
        q.sort_by_key(|w| w.due);
    }
    queues
}

struct Worker<'a> {
    lds: std::sync::Arc<crate::dependency::Lds>,
    gds: &'a Gds,
    connector: &'a dyn Connector,
    config: &'a DriverConfig,
    sim_start: SimTime,
    start: Instant,
    abort: &'a AtomicBool,
    metrics: &'a Metrics,
    /// Per-kind recorder handles, cached so the hot path never takes the
    /// metrics registry lock (only atomic increments on the recorder).
    recorders: HashMap<OpKind, Arc<KindRecorder>>,
    stats: PartitionStats,
    walk_counter: u64,
}

impl Worker<'_> {
    fn run(mut self, queue: Vec<&WorkItem>, out: &Mutex<Vec<PartitionStats>>) -> SnbResult<()> {
        let result = match self.config.mode {
            ExecutionMode::Parallel => self.run_parallel(&queue),
            ExecutionMode::Windowed { window_millis } => self.run_windowed(&queue, window_millis),
        };
        // A failed or aborted partition may hold initiated-but-incomplete
        // operations; abandon() drops them so no other partition deadlocks
        // on a dependency that will never complete. The clean path keeps
        // finish()'s stricter everything-completed invariant.
        if result.is_ok() && !self.abort.load(Ordering::Acquire) {
            self.lds.finish();
        } else {
            self.lds.abandon();
        }
        // Publish scheduler accounting regardless of outcome (latencies are
        // recorded directly into the shared per-kind recorders).
        out.lock().push(self.stats);
        result
    }

    fn run_parallel(&mut self, queue: &[&WorkItem]) -> SnbResult<()> {
        for item in queue {
            if self.abort.load(Ordering::Acquire) {
                break;
            }
            // Root span for the whole client-side lifetime of this item:
            // queue phases (GCT wait, pacing), execution, and any walk
            // short reads it triggers nest under it.
            let _op_span = trace::span(op_span_name(item.op.kind()));
            self.lds.initiate(item.due);
            if item.dep.millis() > 0 {
                self.wait_for_gct(item.dep);
            }
            self.pace(item.due);
            // The GCT wait and the pacing sleep both return early on abort;
            // don't execute an operation the run no longer wants.
            if self.abort.load(Ordering::Acquire) {
                break;
            }
            let outcome = self.execute_timed(&item.op)?;
            self.lds.complete(item.due);
            if let Operation::Complex(_) = item.op {
                self.short_read_walk(outcome)?;
            }
        }
        Ok(())
    }

    fn run_windowed(&mut self, queue: &[&WorkItem], window_millis: i64) -> SnbResult<()> {
        let window = window_millis.max(1);
        let mut i = 0;
        while i < queue.len() {
            if self.abort.load(Ordering::Acquire) {
                break;
            }
            let w_idx = queue[i].due.since(self.sim_start) / window;
            let mut j = i;
            while j < queue.len() && queue[j].due.since(self.sim_start) / window == w_idx {
                j += 1;
            }
            let batch = &queue[i..j];
            self.stats.window_batches += 1;
            // Initiate the whole window, then one GCT synchronization for
            // its maximum dependency — the once-per-window sync that
            // Windowed Execution buys (§4.2).
            for item in batch {
                self.lds.initiate(item.due);
            }
            let max_dep = batch.iter().map(|w| w.dep).max().unwrap_or(SimTime(0));
            if max_dep.millis() > 0 {
                self.wait_for_gct(max_dep);
            }
            self.pace(batch[0].due);
            if self.abort.load(Ordering::Acquire) {
                break;
            }
            for item in batch {
                // Per-item root span; the window's single GCT sync and pace
                // happen outside any item and trace as their own roots.
                let _op_span = trace::span(op_span_name(item.op.kind()));
                let outcome = self.execute_timed(&item.op)?;
                self.lds.complete(item.due);
                if let Operation::Complex(_) = item.op {
                    self.short_read_walk(outcome)?;
                }
            }
            i = j;
        }
        Ok(())
    }

    /// Fig. 8's `while(operation.DEP < GDS.GCT) wait` (with the comparison
    /// the right way around). Time spent blocked here is the price of
    /// dependent execution, so it is accounted per partition.
    fn wait_for_gct(&mut self, dep: SimTime) {
        if self.gds.gct() >= dep {
            return;
        }
        let _span = trace::span(&SPAN_GCT_WAIT);
        let t0 = Instant::now();
        let mut spins = 0u32;
        loop {
            if self.gds.gct() >= dep || self.abort.load(Ordering::Acquire) {
                break;
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else if spins < 96 {
                std::thread::yield_now();
            } else {
                // Long wait (a paced dependency can be far in the future):
                // park on the GDS wake signal instead of burning a core,
                // which would starve co-scheduled partitions on small
                // machines. Woken by any stream's completion/finish and on
                // abort; the cap bounds the cost of a lost wakeup.
                self.stats.gct_parks += 1;
                self.gds.signal().wait_until(
                    || self.gds.gct() >= dep || self.abort.load(Ordering::Acquire),
                    Duration::from_millis(1),
                );
            }
        }
        self.stats.gct_waits += 1;
        self.stats.gct_wait_micros += t0.elapsed().as_micros() as u64;
    }

    /// Fig. 8's `while(operation.DUE < now()) wait`: pace to the configured
    /// acceleration factor. An operation whose due time has already passed
    /// is counted as schedule slippage.
    fn pace(&mut self, due: SimTime) {
        let Some(accel) = self.config.acceleration else { return };
        let target = Duration::from_millis((due.since(self.sim_start) as f64 / accel) as u64);
        let now = self.start.elapsed();
        if now > target {
            self.stats.slippage_micros += (now - target).as_micros() as u64;
            return;
        }
        let _span = trace::span(&SPAN_PACE);
        loop {
            // Another partition may have failed while we pace toward a due
            // time that can be the rest of the simulated span away; without
            // this check a failed accelerated run keeps sleeping instead of
            // stopping.
            if self.abort.load(Ordering::Acquire) {
                return;
            }
            let elapsed = self.start.elapsed();
            if elapsed >= target {
                return;
            }
            let remain = target - elapsed;
            if remain > Duration::from_millis(2) {
                // Cap individual sleeps so the abort flag is observed
                // promptly no matter how distant the due time is.
                std::thread::sleep((remain / 2).min(Duration::from_millis(10)));
            } else {
                // Never spin here: paced partitions must let each other run
                // even on a single core.
                std::thread::yield_now();
            }
        }
    }

    fn recorder(&mut self, kind: OpKind) -> Arc<KindRecorder> {
        if let Some(rec) = self.recorders.get(&kind) {
            return Arc::clone(rec);
        }
        let rec = self.metrics.recorder(kind);
        self.recorders.insert(kind, Arc::clone(&rec));
        rec
    }

    fn execute_timed(&mut self, op: &Operation) -> SnbResult<crate::connector::OpOutcome> {
        let rec = self.recorder(op.kind());
        // Operator counters tick into the kind's shared profile while the
        // connector runs the operation.
        let _scope = QueryProfile::enter(Arc::clone(rec.profile()));
        // Delineates execution from queue time inside the op's root span;
        // store stages (or the wire round trip) nest under it.
        let _span = trace::span(&SPAN_EXECUTE);
        let t0 = Instant::now();
        let outcome = self.connector.execute(op)?;
        let latency = t0.elapsed().as_micros() as u64;
        rec.record(self.start.elapsed().as_micros() as u64, latency);
        self.stats.ops += 1;
        Ok(outcome)
    }

    /// The random walk over short reads: "This chain of operations is
    /// governed by two parameters: the probability to pick an element from
    /// the previous iteration P, and the step Δ with which this probability
    /// is decreased at every iteration."
    fn short_read_walk(&mut self, seed: crate::connector::OpOutcome) -> SnbResult<()> {
        self.walk_counter += 1;
        let mut rng = Rng::for_entity(self.config.seed, Stream::Workload, self.walk_counter);
        let mut prob = self.config.short_read_prob;
        let mut person = seed.seed_person;
        let mut message = seed.seed_message;
        while prob > 0.0 && rng.chance(prob) {
            // Alternate between profile-side and post-side lookups,
            // whichever has a live seed.
            let q = match (person, message) {
                (Some(p), _) if rng.chance(0.5) || message.is_none() => match rng.below(3) {
                    0 => ShortQuery::S1(p),
                    1 => ShortQuery::S2(p),
                    _ => ShortQuery::S3(p),
                },
                (_, Some(m)) => match rng.below(4) {
                    0 => ShortQuery::S4(m),
                    1 => ShortQuery::S5(m),
                    2 => ShortQuery::S6(m),
                    _ => ShortQuery::S7(m),
                },
                _ => break,
            };
            let outcome = self.execute_timed(&Operation::Short(q))?;
            person = outcome.seed_person.or(person);
            message = outcome.seed_message.or(message);
            prob -= self.config.short_read_decay;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connector::{SleepConnector, StoreConnector};
    use crate::mix;
    use snb_datagen::{generate, Dataset, GeneratorConfig};
    use snb_queries::Engine;
    use std::sync::{Arc, OnceLock};

    fn dataset() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| generate(GeneratorConfig::with_persons(400).activity(0.4)).unwrap())
    }

    fn loaded_store(ds: &Dataset) -> Arc<snb_store::Store> {
        let store = Arc::new(snb_store::Store::new());
        store.bulk_load(ds);
        store
    }

    #[test]
    fn update_replay_respects_dependencies_across_partition_counts() {
        // The store validates every foreign key on insert, so a dependency
        // violation (e.g. a friendship arriving before one of its persons)
        // would surface as an error. Running the same stream at several
        // partition counts exercises the GCT synchronization paths.
        let ds = dataset();
        let items = mix::updates_only(ds);
        for partitions in [1, 2, 4, 8] {
            let store = loaded_store(ds);
            let conn = StoreConnector::new(store, Engine::Intended);
            let config = DriverConfig { partitions, ..DriverConfig::default() };
            let report = run(&items, &conn, &config)
                .unwrap_or_else(|e| panic!("partitions={partitions}: {e}"));
            assert_eq!(report.total_ops, items.len(), "partitions={partitions}");
        }
    }

    #[test]
    fn windowed_mode_executes_the_same_operations() {
        let ds = dataset();
        let items = mix::updates_only(ds);
        let store = loaded_store(ds);
        let conn = StoreConnector::new(store, Engine::Intended);
        let config = DriverConfig {
            partitions: 4,
            mode: ExecutionMode::Windowed { window_millis: ds.config.t_safe_millis },
            ..DriverConfig::default()
        };
        let report = run(&items, &conn, &config).unwrap();
        assert_eq!(report.total_ops, items.len());
    }

    #[test]
    fn full_mix_produces_all_operation_classes() {
        let ds = dataset();
        let bindings = snb_params::curated_bindings(ds, 8);
        let items = mix::build_mix(ds, &bindings);
        let store = loaded_store(ds);
        let conn = StoreConnector::new(store, Engine::Intended);
        let report = run(&items, &conn, &DriverConfig::default()).unwrap();
        let kinds = report.metrics.kinds();
        assert!(kinds.iter().any(|k| matches!(k, OpKind::Update(_))));
        assert!(kinds.iter().any(|k| matches!(k, OpKind::Complex(_))));
        assert!(kinds.iter().any(|k| matches!(k, OpKind::Short(_))), "random walk fired");
        assert!(report.total_ops > items.len(), "short reads add to the mix");
        // No steady-state assertion here: an as-fast-as-possible replay of
        // an insert-heavy mix grows the dataset during the run, so later
        // complex reads are legitimately slower than the first ones.
    }

    #[test]
    fn acceleration_paces_the_run() {
        let ds = dataset();
        // Take a short slice of the stream so the paced run stays quick.
        let items: Vec<WorkItem> = mix::updates_only(ds).into_iter().take(200).collect();
        let span = items.last().unwrap().due.since(items[0].due);
        let accel = span as f64 / 300.0; // target ~300ms wall
        let store = loaded_store(ds);
        let conn = StoreConnector::new(store, Engine::Intended);
        let config =
            DriverConfig { partitions: 2, acceleration: Some(accel), ..DriverConfig::default() };
        let report = run(&items, &conn, &config).unwrap();
        assert!(report.wall >= Duration::from_millis(250), "pacing ignored: {:?}", report.wall);
        let ratio = report.achieved_acceleration / accel;
        assert!((0.5..=1.1).contains(&ratio), "achieved/target {ratio}");
    }

    #[test]
    fn sleep_connector_scales_with_partitions() {
        // Miniature Table 5: with a 1ms-per-op dummy connector, doubling the
        // partitions should nearly double throughput.
        let ds = dataset();
        let items: Vec<WorkItem> = mix::updates_only(ds).into_iter().take(600).collect();
        let conn = SleepConnector::new(Duration::from_millis(1));
        let t1 = run(&items, &conn, &DriverConfig { partitions: 1, ..DriverConfig::default() })
            .unwrap()
            .ops_per_second;
        let t4 = run(&items, &conn, &DriverConfig { partitions: 4, ..DriverConfig::default() })
            .unwrap()
            .ops_per_second;
        assert!(t4 > 2.0 * t1, "1 partition: {t1:.0} ops/s, 4 partitions: {t4:.0} ops/s");
    }

    #[test]
    fn report_includes_partition_stats_and_store_counters() {
        let ds = dataset();
        let items = mix::updates_only(ds);
        let store = loaded_store(ds);
        let conn = StoreConnector::new(store, Engine::Intended);
        let config = DriverConfig { partitions: 3, ..DriverConfig::default() };
        let report = run(&items, &conn, &config).unwrap();
        assert_eq!(report.partitions.len(), 3);
        assert_eq!(
            report.partitions.iter().map(|p| p.partition).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        let ops: u64 = report.partitions.iter().map(|p| p.ops).sum();
        assert_eq!(ops as usize, report.total_ops);
        let commits = report
            .connector_counters
            .iter()
            .find(|(name, _)| name == "store.txn.commits")
            .map(|&(_, v)| v)
            .expect("store counters exposed through the connector");
        assert_eq!(commits as usize, items.len());
        // Histogram snapshots ride along: every committed update recorded
        // one sample in each write-pipeline stage histogram.
        let apply = report
            .connector_histograms
            .iter()
            .find(|(name, _)| name == "store.stage.apply_nanos")
            .map(|(_, h)| h)
            .expect("stage histograms exposed through the connector");
        assert_eq!(apply.count as usize, items.len());
        assert!(apply.mean() > 0.0);
    }

    #[test]
    fn tracing_captures_nested_driver_and_store_spans() {
        let ds = dataset();
        let items: Vec<WorkItem> = mix::updates_only(ds).into_iter().take(120).collect();
        let store = loaded_store(ds);
        let conn = StoreConnector::new(store, Engine::Intended);
        trace::enable(1);
        let result = run(&items, &conn, &DriverConfig { partitions: 2, ..DriverConfig::default() });
        trace::disable();
        result.unwrap();
        let spans = trace::drain();
        // Other tests may run concurrently and contribute spans while
        // tracing is on; existence and well-formedness assertions are
        // robust to that, exact counts would not be.
        let names: std::collections::HashSet<&str> =
            spans.iter().map(|s| s.name.as_str()).collect();
        assert!(
            names.iter().any(|n| n.starts_with("op.U")),
            "update root spans present: {names:?}"
        );
        assert!(names.contains("driver.execute"), "execute child span present");
        assert!(names.contains("store.stage.apply"), "store stage spans present");
        let nested = trace::validate_nesting(&spans).unwrap();
        assert!(nested > 0, "at least one parent/child pair validated");
        // driver.execute spans are children of an op root in the same trace.
        let exec = spans.iter().find(|s| s.name == "driver.execute").unwrap();
        let parent =
            spans.iter().find(|s| s.span_id == exec.parent_id && s.trace_id == exec.trace_id);
        if let Some(p) = parent {
            assert!(p.name.starts_with("op."), "execute parent is an op root: {}", p.name);
        }
    }

    #[test]
    fn empty_workload_is_rejected() {
        let conn = SleepConnector::new(Duration::from_micros(1));
        assert!(run(&[], &conn, &DriverConfig::default()).is_err());
    }
}
