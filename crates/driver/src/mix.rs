//! Query-mix construction (§4, "Query Mix" + Table 4).
//!
//! The mix interleaves the pre-generated update stream with complex
//! read-only queries at the paper's Table 4 relative frequencies ("Query 1
//! should be performed once in every 132 update operations"), scaled by the
//! logarithmic factor as the dataset grows so the target 10 % / 50 % / 40 %
//! CPU split between updates, complex reads and short reads is preserved.
//! Short reads are not scheduled here: the driver issues them at run time
//! as a random walk seeded by complex-read results, governed by
//! `(P, Δ)` — see [`crate::scheduler`].

use crate::connector::Operation;
use snb_core::time::SimTime;
use snb_core::update::StreamKey;
use snb_datagen::Dataset;
use snb_params::Bindings;

/// Table 4: number of update operations between consecutive executions of
/// each complex read (Q1..Q14).
pub const TABLE4_FREQUENCIES: [u64; 14] =
    [132, 240, 550, 161, 534, 1615, 144, 13, 1425, 217, 133, 238, 57, 144];

/// Reference population the Table 4 calibration was performed against
/// (SF ≈ 1 in our persons-per-SF mapping).
const CALIBRATION_PERSONS: f64 = 6_000.0;

/// One scheduled item of the mixed workload.
#[derive(Debug, Clone)]
pub struct WorkItem {
    /// Simulation due time.
    pub due: SimTime,
    /// Dependency time (updates only; `SimTime(0)` = none).
    pub dep: SimTime,
    /// Partition hint: items with equal hints execute on the same stream,
    /// preserving intra-forum causality (§4.2 Sequential mode).
    pub partition_hint: u64,
    /// The operation.
    pub op: Operation,
}

/// Scaled inter-arrival counts: frequencies grow (reads become rarer) with
/// the logarithm of the person count, mirroring §4 "Scaling the workload".
pub fn scaled_frequencies(n_persons: u64) -> [u64; 14] {
    let scale = ((n_persons.max(2) as f64).log10() / CALIBRATION_PERSONS.log10()).max(0.25);
    TABLE4_FREQUENCIES.map(|f| ((f as f64 * scale).round() as u64).max(1))
}

/// Build the interleaved workload: all updates, with complex reads injected
/// at the scaled Table 4 cadence, due-time ordered.
pub fn build_mix(ds: &Dataset, bindings: &Bindings) -> Vec<WorkItem> {
    let freqs = scaled_frequencies(ds.config.n_persons);
    let mut items: Vec<WorkItem> = Vec::new();
    let mut binding_idx = [0usize; 14];

    for (i, u) in ds.update_stream().into_iter().enumerate() {
        let count = i as u64 + 1;
        let partition_hint = match u.stream {
            StreamKey::Person => person_hint(&u.op),
            StreamKey::Forum(f) => f,
        };
        let due = u.due;
        items.push(WorkItem { due, dep: u.dep, partition_hint, op: Operation::Update(u.op) });
        // Inject each complex read whose cadence divides the update count.
        for (qi, &f) in freqs.iter().enumerate() {
            if count.is_multiple_of(f) {
                let q = bindings.get(qi + 1, binding_idx[qi]).clone();
                binding_idx[qi] += 1;
                let hint = crate::connector::anchor_person(&q).map(|p| p.raw()).unwrap_or(0);
                items.push(WorkItem {
                    due,
                    dep: SimTime(0),
                    partition_hint: hint,
                    op: Operation::Complex(q),
                });
            }
        }
    }
    // Stable due order; updates precede reads at equal due times (reads were
    // pushed after their triggering update, and the sort is stable).
    items.sort_by_key(|w| w.due);
    items
}

fn person_hint(op: &snb_core::update::UpdateOp) -> u64 {
    use snb_core::update::UpdateOp;
    match op {
        UpdateOp::AddPerson(p) => p.id.raw(),
        UpdateOp::AddFriendship(k) => k.a.raw(),
        _ => 0,
    }
}

/// A workload of only the update stream (the Table 5 configuration: "The
/// chosen workload consists only of the SNB-Interactive updates").
pub fn updates_only(ds: &Dataset) -> Vec<WorkItem> {
    ds.update_stream()
        .into_iter()
        .map(|u| {
            let partition_hint = match u.stream {
                StreamKey::Person => person_hint(&u.op),
                StreamKey::Forum(f) => f,
            };
            WorkItem { due: u.due, dep: u.dep, partition_hint, op: Operation::Update(u.op) }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_datagen::{generate, GeneratorConfig};
    use std::sync::OnceLock;

    fn dataset() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| generate(GeneratorConfig::with_persons(500).activity(0.5)).unwrap())
    }

    #[test]
    fn frequencies_scale_logarithmically() {
        let base = scaled_frequencies(6_000);
        assert_eq!(base, TABLE4_FREQUENCIES, "calibration point is identity");
        let big = scaled_frequencies(6_000_000);
        for (b, g) in base.iter().zip(&big) {
            assert!(g > b, "reads must become rarer at larger scale");
        }
        let small = scaled_frequencies(100);
        for s in small {
            assert!(s >= 1);
        }
    }

    #[test]
    fn mix_is_due_ordered_and_read_share_matches_table4() {
        let ds = dataset();
        let bindings = snb_params::curated_bindings(ds, 10);
        let mix = build_mix(ds, &bindings);
        for w in mix.windows(2) {
            assert!(w[0].due <= w[1].due);
        }
        let updates = mix.iter().filter(|w| matches!(w.op, Operation::Update(_))).count();
        let freqs = scaled_frequencies(ds.config.n_persons);
        for (qi, &f) in freqs.iter().enumerate() {
            let expected = updates as u64 / f;
            let got = mix
                .iter()
                .filter(|w| match &w.op {
                    Operation::Complex(q) => q.number() == qi + 1,
                    _ => false,
                })
                .count() as u64;
            assert!(got.abs_diff(expected) <= 1, "Q{}: got {got}, expected ~{expected}", qi + 1);
        }
    }

    #[test]
    fn q8_is_most_frequent_complex_read() {
        // Table 4: Q8 fires every 13 updates — by far the most frequent.
        let ds = dataset();
        let bindings = snb_params::curated_bindings(ds, 10);
        let mix = build_mix(ds, &bindings);
        let count = |n: usize| {
            mix.iter().filter(|w| matches!(&w.op, Operation::Complex(q) if q.number() == n)).count()
        };
        let q8 = count(8);
        for q in [1, 2, 3, 4, 5, 6, 7, 9, 10, 11, 12, 13, 14] {
            assert!(q8 > count(q), "Q8 ({q8}) should outnumber Q{q} ({})", count(q));
        }
    }

    #[test]
    fn updates_only_preserves_the_stream() {
        let ds = dataset();
        let only = updates_only(ds);
        assert_eq!(only.len(), ds.update_stream().len());
        assert!(only.iter().all(|w| matches!(w.op, Operation::Update(_))));
    }
}
