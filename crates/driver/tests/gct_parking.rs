//! Regression test for the GCT dependency wait: a partition blocked on a
//! far-future dependency must *park* (condvar on the GDS wake signal), not
//! busy-spin, so it cannot starve the co-scheduled partitions it is
//! waiting on.
//!
//! This test lives in its own integration-test binary on purpose: it
//! asserts on the **whole-process CPU time** around one driver run, which
//! only means something when no other CPU-hungry test shares the process.

use snb_core::time::SimTime;
use snb_core::PersonId;
use snb_driver::connector::SleepConnector;
use snb_driver::mix::WorkItem;
use snb_driver::scheduler::{run, DriverConfig};
use snb_driver::Operation;
use snb_queries::params::ShortQuery;
use std::time::{Duration, Instant};

fn item(due: i64, dep: i64, hint: u64) -> WorkItem {
    WorkItem {
        due: SimTime(due),
        dep: SimTime(dep),
        partition_hint: hint,
        op: Operation::Short(ShortQuery::S1(PersonId(hint))),
    }
}

/// utime+stime of this process in clock ticks, from /proc/self/stat
/// (fields 14 and 15; the comm field may contain spaces, so parse from the
/// closing paren). None off Linux — the CPU assertion is then skipped and
/// only the parking/accounting assertions run.
fn process_cpu_ticks() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    let rest = &stat[stat.rfind(')')? + 2..];
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some(utime + stime)
}

#[test]
fn gct_wait_parks_instead_of_spinning() {
    // Partition of hint 1: an op at sim 0, then one at sim 1_000_000.
    // Partition of hint 2: one op due just after, *dependent* on the
    // second — so it blocks in the Fig. 8 GCT loop for most of the run
    // while partition 1 paces toward its completion.
    let span = 1_000_000i64;
    let items = vec![item(0, 0, 1), item(span, 0, 1), item(span + 1, span, 2)];
    let accel = span as f64 / 800.0; // ~800 ms wall
    let config =
        DriverConfig { partitions: 2, acceleration: Some(accel), ..DriverConfig::default() };
    let conn = SleepConnector::new(Duration::ZERO);

    let cpu_before = process_cpu_ticks();
    let t0 = Instant::now();
    let report = run(&items, &conn, &config).unwrap();
    let wall = t0.elapsed();
    let cpu_after = process_cpu_ticks();

    // The run completed: the dependency was eventually satisfied and every
    // op executed, with the blocked partition's wait accounted.
    assert_eq!(report.total_ops, items.len());
    let waiter = report
        .partitions
        .iter()
        .find(|p| p.gct_waits > 0)
        .expect("the dependent partition must record a GCT wait");
    assert!(
        waiter.gct_wait_micros >= 200_000,
        "the dependency is ~800 ms of wall time away, accounted {} µs",
        waiter.gct_wait_micros
    );
    assert!(waiter.gct_parks > 0, "a long GCT wait must escalate from spinning to parking");

    // The whole process — a paced partition asleep between ops plus the
    // parked waiter — must use far less CPU than one spinning core would.
    if let (Some(before), Some(after)) = (cpu_before, cpu_after) {
        // Clock ticks are CLK_TCK (100/s on every mainstream Linux); be
        // generous and only require "well under half a core".
        let cpu_ms = (after - before) * 10;
        let wall_ms = wall.as_millis() as u64;
        assert!(
            cpu_ms < wall_ms / 2,
            "GCT wait burned a core: {cpu_ms} ms CPU over {wall_ms} ms wall"
        );
    }
}
