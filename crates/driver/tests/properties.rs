//! Property-based tests for the dependency-tracking services: the Fig. 7
//! semantics model-checked against a brute-force reference under arbitrary
//! initiate/complete interleavings.

use proptest::prelude::*;
use snb_core::time::SimTime;
use snb_driver::dependency::Gds;
use std::collections::HashSet;

/// A randomized schedule: per stream, a monotone list of due times; plus an
/// interleaving describing which stream completes its next pending op at
/// each step.
#[derive(Debug, Clone)]
struct Schedule {
    /// Monotone due times per stream.
    streams: Vec<Vec<i64>>,
    /// Completion order (stream picks, consumed round-robin over pending).
    completions: Vec<usize>,
}

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    (2usize..5).prop_flat_map(|n_streams| {
        let streams = proptest::collection::vec(
            proptest::collection::vec(1i64..200, 1..20).prop_map(|mut v| {
                v.sort_unstable();
                v
            }),
            n_streams..=n_streams,
        );
        let completions = proptest::collection::vec(0..n_streams, 0..100);
        (streams, completions).prop_map(|(streams, completions)| Schedule { streams, completions })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// GCT never exceeds the smallest incomplete due time minus one, is
    /// monotone, and reaches the global maximum once everything completes.
    #[test]
    fn gct_is_safe_monotone_and_live(s in schedule_strategy()) {
        let n = s.streams.len();
        let gds = Gds::new(n);
        // Initiate everything up front (due order per stream — monotone).
        for (i, stream) in s.streams.iter().enumerate() {
            for &t in stream {
                gds.stream(i).initiate(SimTime(t));
            }
        }
        // Pending queues (complete in due order within a stream; the driver
        // always does, and out-of-order cross-stream is what we vary).
        let mut pending: Vec<std::collections::VecDeque<i64>> =
            s.streams.iter().map(|v| v.iter().copied().collect()).collect();
        let mut completed: HashSet<(usize, i64)> = HashSet::new();
        let mut last_gct = SimTime(0);

        let drive = |stream: usize,
                         pending: &mut Vec<std::collections::VecDeque<i64>>,
                         completed: &mut HashSet<(usize, i64)>| {
            if let Some(t) = pending[stream].pop_front() {
                gds.stream(stream).complete(SimTime(t));
                completed.insert((stream, t));
                if pending[stream].is_empty() {
                    gds.stream(stream).finish();
                }
            }
        };

        for &pick in &s.completions {
            drive(pick, &mut pending, &mut completed);
            let gct = gds.gct();
            // Monotone.
            prop_assert!(gct >= last_gct, "GCT regressed: {gct} < {last_gct}");
            last_gct = gct;
            // Safe: every op with due <= gct must have completed.
            for (i, stream) in s.streams.iter().enumerate() {
                for &t in stream {
                    if t <= gct.millis() {
                        prop_assert!(
                            completed.contains(&(i, t)),
                            "GCT={gct} but stream {i} op at {t} incomplete"
                        );
                    }
                }
            }
        }
        // Drain the rest and check liveness: GCT reaches the global max due.
        for stream in 0..n {
            while !pending[stream].is_empty() {
                drive(stream, &mut pending, &mut completed);
            }
        }
        let global_max = s.streams.iter().flat_map(|v| v.iter()).copied().max().unwrap();
        prop_assert_eq!(gds.gct(), SimTime(global_max));
    }

    /// T_LI and T_LC are monotone per stream under any completion order
    /// within the stream.
    #[test]
    fn tli_tlc_are_monotone(
        dues in proptest::collection::vec(1i64..1_000, 1..40),
        order in any::<u64>(),
    ) {
        let mut dues = dues;
        dues.sort_unstable();
        let gds = Gds::new(1);
        let lds = gds.stream(0).clone();
        for &t in &dues {
            lds.initiate(SimTime(t));
        }
        // Pseudo-random completion order from the seed.
        let mut remaining: Vec<i64> = dues.clone();
        let mut state = order | 1;
        let mut last_tli = lds.tli();
        let mut last_tlc = lds.tlc();
        while !remaining.is_empty() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let idx = (state >> 33) as usize % remaining.len();
            let t = remaining.swap_remove(idx);
            lds.complete(SimTime(t));
            prop_assert!(lds.tli() >= last_tli);
            prop_assert!(lds.tlc() >= last_tlc);
            last_tli = lds.tli();
            last_tlc = lds.tlc();
        }
        lds.finish();
        prop_assert_eq!(lds.tlc(), SimTime(*dues.last().unwrap()));
    }
}
