//! Regression tests for driver correctness fixes: each test fails on the
//! pre-fix scheduler.
//!
//! 1. `Worker::pace()` ignored the abort flag, so a failed accelerated run
//!    kept sleeping toward far-future due times instead of stopping.
//! 2. `run()` took `sim_start` from the *first* item instead of the
//!    minimum due time, so an unsorted workload produced negative
//!    `due.since(sim_start)` offsets — corrupting pacing targets and
//!    (through truncating division) windowed-mode window indices.
//! 3. `achieved_acceleration` divided by `wall.as_millis().max(1)`,
//!    distorting the ratio by up to 1000x for sub-millisecond runs.
//!
//! (Fix 4 — GCT waits park on a condvar instead of busy-spinning — has its
//! own dedicated test binary, `gct_parking.rs`, because it measures process
//! CPU time and must not share the process with CPU-hungry tests.)

use snb_core::time::SimTime;
use snb_core::{PersonId, SnbError, SnbResult};
use snb_driver::connector::{Connector, OpOutcome, SleepConnector};
use snb_driver::mix::WorkItem;
use snb_driver::scheduler::{run, DriverConfig, ExecutionMode};
use snb_driver::Operation;
use snb_queries::params::ShortQuery;
use std::time::{Duration, Instant};

/// A connector that fails every operation immediately.
struct FailingConnector;

impl Connector for FailingConnector {
    fn execute(&self, _op: &Operation) -> SnbResult<OpOutcome> {
        Err(SnbError::Constraint("injected failure".into()))
    }
}

fn short_item(due: i64, dep: i64, hint: u64) -> WorkItem {
    WorkItem {
        due: SimTime(due),
        dep: SimTime(dep),
        partition_hint: hint,
        op: Operation::Short(ShortQuery::S1(PersonId(hint))),
    }
}

/// Fix 1: after one partition fails, a partition paced toward a due time
/// hours into the simulated future must observe the abort flag and stop
/// within a bounded wall time — not sleep out the rest of the span.
#[test]
fn failed_accelerated_run_terminates_promptly() {
    // Partition of hint 1 executes (and fails) immediately; partition of
    // hint 2 paces toward a due time one simulated hour away, which at
    // accel=60 is a 60-second wall-clock sleep on the pre-fix scheduler.
    let items = vec![short_item(0, 0, 1), short_item(3_600_000, 0, 2)];
    let config =
        DriverConfig { partitions: 2, acceleration: Some(60.0), ..DriverConfig::default() };
    let t0 = Instant::now();
    let result = run(&items, &FailingConnector, &config);
    let wall = t0.elapsed();
    assert!(result.is_err(), "injected failure must surface");
    assert!(wall < Duration::from_secs(5), "abort must interrupt pacing, took {wall:?}");
}

/// Fix 2 (pacing half): an unsorted workload whose *first* item carries the
/// maximum due time must still be paced over the full simulated span. The
/// pre-fix scheduler took `sim_start` from the first item, making every
/// pacing target non-positive, and replayed the "paced" run instantly.
#[test]
fn unsorted_input_is_paced_like_sorted() {
    let span = 1_000_000i64; // simulated millis
    let mut items: Vec<WorkItem> =
        (0..40).map(|i| short_item(i * span / 39, 0, (i % 4) as u64 + 1)).collect();
    items.reverse(); // first item now has the maximum due time
    let accel = span as f64 / 300.0; // target ~300 ms wall
    let conn = SleepConnector::new(Duration::ZERO);
    let config =
        DriverConfig { partitions: 2, acceleration: Some(accel), ..DriverConfig::default() };
    let report = run(&items, &conn, &config).unwrap();
    assert_eq!(report.total_ops, items.len());
    assert!(
        report.wall >= Duration::from_millis(250),
        "unsorted input must not collapse the paced span: {:?}",
        report.wall
    );
    let ratio = report.achieved_acceleration / accel;
    assert!((0.5..=1.1).contains(&ratio), "achieved/target {ratio}");
}

/// Fix 2 (windowed half): a shuffled workload must execute identically to
/// the sorted one — same op totals and the same per-partition window
/// batching — in both execution modes. (Due times are distinct here: items
/// sharing a due time have no recoverable causal order once the input is
/// scrambled, so the driver's contract only covers ties that arrive in
/// causal order.) Pre-fix, `sim_start` came from the shuffled first item,
/// so earlier items got negative window offsets whose truncating division
/// merged windows around the origin.
#[test]
fn unsorted_input_runs_identically_to_sorted() {
    let window = 1_000i64;
    let sorted: Vec<WorkItem> =
        (0..64).map(|i| short_item(i * window / 2, 0, (i % 4) as u64 + 1)).collect();
    // Deterministic shuffle: an affine permutation mod 64 (the offset
    // matters — it keeps the minimum due time away from the first slot).
    let unsorted: Vec<WorkItem> = (0..64).map(|i| sorted[(i * 37 + 11) % 64].clone()).collect();

    for mode in [ExecutionMode::Parallel, ExecutionMode::Windowed { window_millis: window }] {
        let config = DriverConfig { partitions: 4, mode, ..DriverConfig::default() };
        let conn = SleepConnector::new(Duration::ZERO);
        let a = run(&sorted, &conn, &config).unwrap();
        let b = run(&unsorted, &conn, &config).unwrap();
        assert_eq!(a.total_ops, sorted.len(), "mode {mode:?}");
        assert_eq!(a.total_ops, b.total_ops, "mode {mode:?}");
        let batches = |r: &snb_driver::RunReport| {
            r.partitions.iter().map(|p| (p.partition, p.ops, p.window_batches)).collect::<Vec<_>>()
        };
        assert_eq!(batches(&a), batches(&b), "window batching must not depend on input order");
        assert_eq!(a.sim_span_millis, b.sim_span_millis, "mode {mode:?}");
    }
}

/// Fix 3: `achieved_acceleration` must agree with the report's own wall
/// clock at full float precision, even for sub-millisecond runs where the
/// pre-fix whole-millisecond division was off by orders of magnitude.
#[test]
fn achieved_acceleration_is_precise_for_short_runs() {
    let items = vec![short_item(0, 0, 1), short_item(10_000, 0, 1)];
    let conn = SleepConnector::new(Duration::from_micros(20));
    let config = DriverConfig { partitions: 1, ..DriverConfig::default() };
    let report = run(&items, &conn, &config).unwrap();
    let wall_millis = report.wall.as_secs_f64() * 1e3;
    let expected = report.sim_span_millis as f64 / wall_millis.max(1e-6);
    let rel = (report.achieved_acceleration - expected).abs() / expected;
    assert!(
        rel < 1e-9,
        "achieved_acceleration {} != sim/wall {expected} (wall {:?})",
        report.achieved_acceleration,
        report.wall
    );
}

/// PR 5 satellite: with the store's global write latch replaced by striped
/// shard locks, completions ring the GCT signal from many threads at once,
/// and the old `notify_all`-per-completion stormed every parked partition
/// (`O(partitions)` futile wakes per completion). `WakeSignal::notify` now
/// wakes at most `MAX_WAKE_BATCH` waiters per call, while `notify_all`
/// (used by the abort path) still releases everyone at once.
#[test]
fn gct_wake_batches_are_capped() {
    use snb_driver::dependency::{WakeSignal, MAX_WAKE_BATCH};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;

    const WAITERS: usize = 8;
    let signal = Arc::new(WakeSignal::default());
    let released = Arc::new(AtomicBool::new(false));
    let woken = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..WAITERS {
            let signal = Arc::clone(&signal);
            let released = Arc::clone(&released);
            let woken = Arc::clone(&woken);
            scope.spawn(move || {
                // Cap far beyond the test budget: only a notification can
                // end this wait early.
                signal.wait_until(|| released.load(Ordering::SeqCst), Duration::from_secs(30));
                woken.fetch_add(1, Ordering::SeqCst);
            });
        }
        // All eight must actually park before we ring the bell.
        while signal.parks() < WAITERS as u64 {
            assert!(start.elapsed() < Duration::from_secs(5), "waiters never parked");
            std::thread::yield_now();
        }

        // One capped notify: at most MAX_WAKE_BATCH waiters come back.
        signal.notify();
        std::thread::sleep(Duration::from_millis(100));
        let after_one = woken.load(Ordering::SeqCst);
        assert!(after_one >= 1, "a capped notify must wake someone");
        assert!(
            after_one <= MAX_WAKE_BATCH,
            "notify woke {after_one} waiters, cap is {MAX_WAKE_BATCH}"
        );
        assert!(
            signal.capped_wakes() >= (WAITERS - MAX_WAKE_BATCH) as u64,
            "suppressed wake-ups must be counted"
        );

        // The abort path releases everyone immediately, cap bypassed.
        released.store(true, Ordering::SeqCst);
        signal.notify_all();
    });
    assert_eq!(woken.load(Ordering::SeqCst), WAITERS);
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "notify_all must release the remaining waiters without waiting out the cap"
    );
}
