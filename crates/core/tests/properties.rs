//! Property-based tests for the core primitives: calendar arithmetic, RNG
//! distribution bounds, and the degree model.

use proptest::prelude::*;
use snb_core::degree::DegreeModel;
use snb_core::rng::{Rng, Stream};
use snb_core::time::{SimTime, MILLIS_PER_DAY};

proptest! {
    /// Calendar roundtrip holds for any date in a ±200-year window.
    #[test]
    fn simtime_ymd_roundtrip(days in -73_000i64..73_000) {
        let t = SimTime(days * MILLIS_PER_DAY);
        let (y, m, d) = t.to_ymd();
        prop_assert!( (1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
        prop_assert_eq!(SimTime::from_ymd(y, m, d), t);
    }

    /// Adding days then decomposing is consistent with millisecond math.
    #[test]
    fn simtime_day_arithmetic(base in -10_000i64..10_000, add in 0i64..5_000) {
        let t = SimTime(base * MILLIS_PER_DAY);
        let u = t.plus_days(add);
        prop_assert_eq!(u.since(t), add * MILLIS_PER_DAY);
        prop_assert!(u >= t);
    }

    /// Month buckets increase with time and are contiguous.
    #[test]
    fn month_buckets_are_monotone(a in 0i64..1_095, b in 0i64..1_095) {
        let ta = SimTime::SIM_START.plus_days(a);
        let tb = SimTime::SIM_START.plus_days(b);
        if a <= b {
            prop_assert!(ta.month_bucket() <= tb.month_bucket());
        }
        prop_assert!(tb.month_bucket() - ta.month_bucket() <= (b - a).abs() / 28 + 1);
    }

    /// `below(n)` always lands in `[0, n)` and is deterministic per stream.
    #[test]
    fn rng_below_is_bounded(seed in any::<u64>(), entity in any::<u64>(), n in 1u64..1_000_000) {
        let mut a = Rng::for_entity(seed, Stream::Misc, entity);
        let mut b = Rng::for_entity(seed, Stream::Misc, entity);
        for _ in 0..50 {
            let x = a.below(n);
            prop_assert!(x < n);
            prop_assert_eq!(x, b.below(n));
        }
    }

    /// `range_i64` is inclusive on both ends and never escapes.
    #[test]
    fn rng_range_is_inclusive(seed in any::<u64>(), lo in -1_000i64..1_000, width in 0i64..1_000) {
        let hi = lo + width;
        let mut rng = Rng::for_entity(seed, Stream::Misc, 1);
        for _ in 0..50 {
            let v = rng.range_i64(lo, hi);
            prop_assert!(v >= lo && v <= hi);
        }
    }

    /// Shuffle is always a permutation.
    #[test]
    fn rng_shuffle_permutes(seed in any::<u64>(), len in 0usize..200) {
        let mut v: Vec<usize> = (0..len).collect();
        let mut rng = Rng::for_entity(seed, Stream::Misc, 2);
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..len).collect::<Vec<_>>());
    }

    /// Weighted index respects the cumulative bounds.
    #[test]
    fn rng_weighted_index_in_bounds(seed in any::<u64>(), weights in proptest::collection::vec(0.01f64..100.0, 1..30)) {
        let mut cum = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for w in &weights {
            total += w;
            cum.push(total);
        }
        let mut rng = Rng::for_entity(seed, Stream::Misc, 3);
        for _ in 0..50 {
            prop_assert!(rng.weighted_index(&cum) < cum.len());
        }
    }

    /// Geometric and exponential draws are nonnegative and finite.
    #[test]
    fn rng_distributions_are_sane(seed in any::<u64>(), p in 0.01f64..0.99, lambda in 0.01f64..50.0) {
        let mut rng = Rng::for_entity(seed, Stream::Misc, 4);
        for _ in 0..20 {
            let g = rng.geometric(p);
            prop_assert!(g < 10_000_000);
            let e = rng.exponential(lambda);
            prop_assert!(e.is_finite() && e >= 0.0);
        }
    }

    /// Target degrees stay within the scaled percentile envelope.
    #[test]
    fn degree_targets_are_positive_and_bounded(seed in any::<u64>(), n_persons in 10u64..1_000_000) {
        let model = DegreeModel::facebook();
        let mut rng = Rng::for_entity(seed, Stream::Degree, 9);
        let scale = DegreeModel::avg_degree_for(n_persons) / model.unscaled_mean();
        let max_possible = (model.max_degree_at_percentile(100) * scale).ceil() as u32 + 1;
        for _ in 0..50 {
            let d = model.target_degree(&mut rng, n_persons);
            prop_assert!(d >= 1);
            prop_assert!(d <= max_possible, "{d} > {max_possible}");
        }
    }

    /// The average-degree law is monotone in network size.
    #[test]
    fn avg_degree_law_is_monotone(a in 2u64..100_000_000, b in 2u64..100_000_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(DegreeModel::avg_degree_for(lo) <= DegreeModel::avg_degree_for(hi) + 1e-9);
    }
}
