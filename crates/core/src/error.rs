//! Crate-wide error type.

use std::fmt;

/// Errors surfaced by the SNB crates.
#[derive(Debug)]
pub enum SnbError {
    /// A referenced entity does not exist (or is not yet visible to the
    /// reading snapshot).
    NotFound {
        /// Entity kind, e.g. `"person"`.
        entity: &'static str,
        /// Raw identifier that failed to resolve.
        id: u64,
    },
    /// An insert would violate a schema-level invariant (duplicate primary
    /// key, dangling foreign key, self-friendship, ...).
    Constraint(String),
    /// Configuration rejected (e.g. zero persons, inverted time window).
    Config(String),
    /// Underlying I/O failure (WAL, CSV serialization).
    Io(std::io::Error),
}

impl fmt::Display for SnbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnbError::NotFound { entity, id } => write!(f, "{entity} {id} not found"),
            SnbError::Constraint(msg) => write!(f, "constraint violation: {msg}"),
            SnbError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            SnbError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for SnbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnbError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnbError {
    fn from(e: std::io::Error) -> Self {
        SnbError::Io(e)
    }
}

/// Convenience alias used throughout the workspace.
pub type SnbResult<T> = Result<T, SnbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = SnbError::NotFound { entity: "person", id: 5 };
        assert_eq!(e.to_string(), "person 5 not found");
        let e = SnbError::Constraint("duplicate knows edge".into());
        assert!(e.to_string().contains("duplicate knows edge"));
    }

    #[test]
    fn io_error_conversion_preserves_source() {
        use std::error::Error;
        let io = std::io::Error::other("disk gone");
        let e: SnbError = io.into();
        assert!(e.source().is_some());
    }
}
