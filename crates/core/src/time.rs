//! Simulation time.
//!
//! The benchmark timeline covers three years (§1: "a standard scale factor
//! covers three years. Of this 32 months are bulkloaded at benchmark start,
//! whereas the data from the last 4 months is added using individual DML
//! statements"). We model simulation time as milliseconds since the Unix
//! epoch, matching the LDBC CSV `creationDate` representation, and provide
//! just enough calendar arithmetic (proleptic Gregorian, no external crates)
//! for the generator's date-correlated rules.

use std::fmt;

/// A point in simulation time: milliseconds since the Unix epoch (UTC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub i64);

/// Milliseconds per second.
pub const MILLIS_PER_SECOND: i64 = 1_000;
/// Milliseconds per minute.
pub const MILLIS_PER_MINUTE: i64 = 60 * MILLIS_PER_SECOND;
/// Milliseconds per hour.
pub const MILLIS_PER_HOUR: i64 = 60 * MILLIS_PER_MINUTE;
/// Milliseconds per day.
pub const MILLIS_PER_DAY: i64 = 24 * MILLIS_PER_HOUR;

impl SimTime {
    /// Simulation start: 2010-01-01T00:00:00Z, the network's birth date.
    pub const SIM_START: SimTime = SimTime::from_ymd(2010, 1, 1);
    /// Simulation end: three years after the start.
    pub const SIM_END: SimTime = SimTime::from_ymd(2013, 1, 1);
    /// The bulk-load / update-stream split: 32 months after start
    /// (2012-09-01). Everything earlier is bulk-loaded; the remaining four
    /// months are replayed as individual DML statements by the driver.
    pub const UPDATE_SPLIT: SimTime = SimTime::from_ymd(2012, 9, 1);

    /// Construct from a calendar date at midnight UTC. `month` and `day` are
    /// 1-based. Days are validated only by debug assertion; the generator
    /// always passes valid dates.
    pub const fn from_ymd(year: i64, month: u8, day: u8) -> SimTime {
        SimTime(days_from_civil(year, month as i64, day as i64) * MILLIS_PER_DAY)
    }

    /// Raw millisecond value.
    #[inline]
    pub fn millis(self) -> i64 {
        self.0
    }

    /// Add a number of milliseconds.
    #[inline]
    pub fn plus_millis(self, ms: i64) -> SimTime {
        SimTime(self.0 + ms)
    }

    /// Add a number of whole days.
    #[inline]
    pub fn plus_days(self, days: i64) -> SimTime {
        SimTime(self.0 + days * MILLIS_PER_DAY)
    }

    /// Millisecond difference `self - other`.
    #[inline]
    pub fn since(self, other: SimTime) -> i64 {
        self.0 - other.0
    }

    /// Decompose into `(year, month, day)` in UTC.
    pub fn to_ymd(self) -> (i64, u8, u8) {
        let days = self.0.div_euclid(MILLIS_PER_DAY);
        civil_from_days(days)
    }

    /// Calendar year.
    pub fn year(self) -> i64 {
        self.to_ymd().0
    }

    /// Calendar month (1-12).
    pub fn month(self) -> u8 {
        self.to_ymd().1
    }

    /// Zero-based month index since [`SimTime::SIM_START`]; used to bucket
    /// continuous timestamp parameters during parameter curation.
    pub fn month_bucket(self) -> i64 {
        let (y, m, _) = self.to_ymd();
        let (sy, sm, _) = SimTime::SIM_START.to_ymd();
        (y - sy) * 12 + (m as i64 - sm as i64)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let days = self.0.div_euclid(MILLIS_PER_DAY);
        let rem = self.0.rem_euclid(MILLIS_PER_DAY);
        let (y, m, d) = civil_from_days(days);
        let h = rem / MILLIS_PER_HOUR;
        let min = (rem % MILLIS_PER_HOUR) / MILLIS_PER_MINUTE;
        let s = (rem % MILLIS_PER_MINUTE) / MILLIS_PER_SECOND;
        let ms = rem % MILLIS_PER_SECOND;
        write!(f, "{y:04}-{m:02}-{d:02}T{h:02}:{min:02}:{s:02}.{ms:03}Z")
    }
}

/// Days since 1970-01-01 for a proleptic Gregorian civil date.
/// Algorithm from Howard Hinnant's `days_from_civil`.
const fn days_from_civil(y: i64, m: i64, d: i64) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m + 9) % 12; // March-based month [0, 11]
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i64, u8, u8) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m as u8, d as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(SimTime::from_ymd(1970, 1, 1).millis(), 0);
    }

    #[test]
    fn known_dates() {
        // 2010-01-01 is 14610 days after the epoch.
        assert_eq!(SimTime::SIM_START.millis(), 14_610 * MILLIS_PER_DAY);
        assert_eq!(SimTime::SIM_START.to_ymd(), (2010, 1, 1));
        assert_eq!(SimTime::SIM_END.to_ymd(), (2013, 1, 1));
        assert_eq!(SimTime::UPDATE_SPLIT.to_ymd(), (2012, 9, 1));
    }

    #[test]
    fn roundtrip_every_day_of_simulation() {
        let mut t = SimTime::SIM_START;
        while t < SimTime::SIM_END {
            let (y, m, d) = t.to_ymd();
            assert_eq!(SimTime::from_ymd(y, m, d), t);
            t = t.plus_days(1);
        }
    }

    #[test]
    fn leap_year_handling() {
        // 2012 is a leap year.
        let feb29 = SimTime::from_ymd(2012, 2, 29);
        assert_eq!(feb29.to_ymd(), (2012, 2, 29));
        assert_eq!(feb29.plus_days(1).to_ymd(), (2012, 3, 1));
    }

    #[test]
    fn month_buckets_cover_simulation() {
        assert_eq!(SimTime::SIM_START.month_bucket(), 0);
        assert_eq!(SimTime::from_ymd(2010, 12, 15).month_bucket(), 11);
        assert_eq!(SimTime::UPDATE_SPLIT.month_bucket(), 32);
        assert_eq!(SimTime::SIM_END.plus_millis(-1).month_bucket(), 35);
    }

    #[test]
    fn display_iso8601() {
        let t = SimTime::from_ymd(2011, 6, 5)
            .plus_millis(13 * MILLIS_PER_HOUR + 7 * MILLIS_PER_MINUTE + 9 * MILLIS_PER_SECOND + 42);
        assert_eq!(t.to_string(), "2011-06-05T13:07:09.042Z");
    }

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::from_ymd(2010, 5, 1);
        let b = a.plus_days(3);
        assert!(b > a);
        assert_eq!(b.since(a), 3 * MILLIS_PER_DAY);
    }
}
