//! Deterministic random-number generation.
//!
//! DATAGEN's key engineering property (§2.4) is that "regardless \[of\] the
//! Hadoop configuration parameters (#node, #map and #reduce tasks) the
//! generated dataset is always the same". We reproduce that by deriving an
//! independent, stable RNG stream per (seed, purpose, entity) triple: a
//! worker generating person 4711's interests draws exactly the same values
//! no matter which thread it runs on or how the work was partitioned.
//!
//! The generator is SplitMix64 (Steele et al., "Fast splittable pseudorandom
//! number generators"), which passes BigCrush, needs only 8 bytes of state,
//! and — crucially for us — is trivially *splittable* by hashing the stream
//! coordinates into the seed. We deliberately do not depend on the `rand`
//! crate for generation: its algorithms may change across versions, which
//! would silently change every generated dataset.

/// Skewed/uniform random source with SplitMix64 state.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

/// Purpose tags keep per-entity streams independent: drawing more values for
/// one attribute never perturbs another attribute's stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stream {
    /// Person attribute generation.
    PersonAttrs = 1,
    /// Person interest (tag) assignment.
    Interests = 2,
    /// Friendship window sampling, one sub-stream per correlation dimension.
    Friends = 3,
    /// Forum creation and membership.
    Forums = 4,
    /// Post generation.
    Posts = 5,
    /// Comment-tree generation.
    Comments = 6,
    /// Like generation.
    Likes = 7,
    /// Trending-event placement.
    Events = 8,
    /// Degree-target assignment.
    Degree = 9,
    /// Workload construction (query interleaving, random walks).
    Workload = 10,
    /// Miscellaneous / tests.
    Misc = 11,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// RNG from a raw seed.
    pub fn new(seed: u64) -> Rng {
        Rng { state: mix64(seed.wrapping_add(GOLDEN_GAMMA)) }
    }

    /// Independent deterministic stream for `(seed, purpose, entity)`.
    ///
    /// This is the only constructor the generator uses; it is what makes
    /// generation order- and thread-count-independent.
    pub fn for_entity(seed: u64, purpose: Stream, entity: u64) -> Rng {
        let h = mix64(seed ^ mix64((purpose as u64) << 32 ^ entity));
        Rng::new(h)
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits -> uniform double.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Lemire's multiply-shift rejection method (unbiased).
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    #[inline]
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    /// Uniform index into a slice of length `len`.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Geometric distribution on `{0, 1, 2, ...}` with success probability
    /// `p`: the distance-in-window distribution used when picking friends
    /// from the sliding window (§2.3, "a geometric probability distribution
    /// that decreases with distance in the window").
    pub fn geometric(&mut self, p: f64) -> u64 {
        debug_assert!(p > 0.0 && p < 1.0);
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }

    /// Exponential distribution with rate `lambda` (mean `1/lambda`); the
    /// paper notes most value distributions are "either skewed (typically
    /// using the exponential distribution) or power-laws".
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        debug_assert!(lambda > 0.0);
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        -u.ln() / lambda
    }

    /// Skewed index into a dictionary of `len` entries: exponentially
    /// decaying rank popularity, clamped to the dictionary. Rank 0 is the
    /// most popular entry. `skew` controls decay; the generator uses values
    /// around `8/len` so the top handful of entries dominate, matching the
    /// shape of Table 2.
    pub fn skewed_index(&mut self, len: usize, skew: f64) -> usize {
        debug_assert!(len > 0);
        let idx = self.exponential(skew) as usize;
        idx.min(len - 1)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Pick an index according to cumulative weights (`cum` is
    /// non-decreasing, last element is the total weight).
    pub fn weighted_index(&mut self, cum: &[f64]) -> usize {
        debug_assert!(!cum.is_empty());
        let total = *cum.last().unwrap();
        let x = self.next_f64() * total;
        match cum.binary_search_by(|w| w.partial_cmp(&x).unwrap()) {
            Ok(i) => (i + 1).min(cum.len() - 1),
            Err(i) => i.min(cum.len() - 1),
        }
    }

    /// Uniform simulation-time draw in `[lo, hi)`.
    pub fn sim_time(&mut self, lo: crate::SimTime, hi: crate::SimTime) -> crate::SimTime {
        debug_assert!(lo < hi);
        crate::SimTime(self.range_i64(lo.0, hi.0 - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_coordinates() {
        let mut a = Rng::for_entity(42, Stream::Posts, 7);
        let mut b = Rng::for_entity(42, Stream::Posts, 7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_streams_diverge() {
        let mut a = Rng::for_entity(42, Stream::Posts, 7);
        let mut b = Rng::for_entity(42, Stream::Comments, 7);
        let mut c = Rng::for_entity(42, Stream::Posts, 8);
        let mut d = Rng::for_entity(43, Stream::Posts, 7);
        let a0 = a.next_u64();
        assert_ne!(a0, b.next_u64());
        assert_ne!(a0, c.next_u64());
        assert_ne!(a0, d.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng::new(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Rng::new(2);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn geometric_mean_matches_theory() {
        // Mean of geometric on {0,1,...} with success p is (1-p)/p.
        let mut rng = Rng::new(3);
        let p = 0.25;
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| rng.geometric(p)).sum();
        let mean = sum as f64 / n as f64;
        let expect = (1.0 - p) / p;
        assert!((mean - expect).abs() < 0.1, "mean {mean} vs {expect}");
    }

    #[test]
    fn exponential_mean_matches_theory() {
        let mut rng = Rng::new(4);
        let lambda = 2.0;
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(lambda)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn skewed_index_prefers_low_ranks() {
        let mut rng = Rng::new(5);
        let mut counts = [0usize; 20];
        for _ in 0..20_000 {
            counts[rng.skewed_index(20, 0.4)] += 1;
        }
        assert!(counts[0] > counts[5]);
        assert!(counts[5] > counts[15]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(6);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffled order changed");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Rng::new(7);
        // weights 1, 3 -> cum [1.0, 4.0]; expect ~75% index 1.
        let cum = [1.0, 4.0];
        let n = 40_000;
        let ones = (0..n).filter(|_| rng.weighted_index(&cum) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn range_is_inclusive() {
        let mut rng = Rng::new(8);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1_000 {
            let v = rng.range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            lo_seen |= v == -3;
            hi_seen |= v == 3;
        }
        assert!(lo_seen && hi_seen);
    }
}
