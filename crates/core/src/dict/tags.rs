//! Tags and the tag-class hierarchy.
//!
//! Tags play three correlated roles (Table 1): `person.location` influences
//! `person.interests`; `person.interests` influence the topics of the posts
//! in the person's forums; and the post topic determines the message text.
//! Tags are organised in a class hierarchy (used by complex read Q12,
//! "Expert search", which filters by a TagClass and its descendants).
//!
//! The dictionary synthesizes four country-linked tags per country (music,
//! sport, politics, cuisine) plus a pool of global tags, mirroring how the
//! original DATAGEN's DBpedia tags skew toward a person's home country.

use crate::dict::places::CountryIdx;
use crate::rng::Rng;

/// A tag class (category) in the hierarchy.
#[derive(Debug)]
pub struct TagClassDef {
    /// Class name, e.g. `"MusicalArtist"`.
    pub name: &'static str,
    /// Parent class index; `None` only for the root `Thing`.
    pub parent: Option<usize>,
}

/// A tag (interest / topic).
#[derive(Debug)]
pub struct TagDef {
    /// Display name.
    pub name: String,
    /// Owning tag class.
    pub class: usize,
    /// Country the tag is culturally linked to, if any.
    pub country: Option<CountryIdx>,
    /// Base popularity weight.
    pub weight: f64,
}

/// The tag dictionary.
#[derive(Debug)]
pub struct Tags {
    classes: Vec<TagClassDef>,
    tags: Vec<TagDef>,
    /// Tag indices per country.
    by_country: Vec<Vec<usize>>,
    /// Global (country-less) tag indices.
    global: Vec<usize>,
    /// Cumulative weights over all tags, for unconditioned sampling.
    cum_all: Vec<f64>,
}

/// Class table: (name, parent index). Index 0 is the root.
const CLASSES: &[(&str, Option<usize>)] = &[
    ("Thing", None),            // 0
    ("MusicalArtist", Some(0)), // 1
    ("Sport", Some(0)),         // 2
    ("Politician", Some(0)),    // 3
    ("Cuisine", Some(0)),       // 4
    ("Technology", Some(0)),    // 5
    ("Programming", Some(5)),   // 6
    ("Gadgets", Some(5)),       // 7
    ("Science", Some(0)),       // 8
    ("Film", Some(0)),          // 9
    ("Literature", Some(0)),    // 10
    ("Travel", Some(0)),        // 11
    ("Gaming", Some(0)),        // 12
];

const GLOBAL_TAGS: &[(&str, usize, f64)] = &[
    ("Rust", 6, 3.0),
    ("Databases", 6, 2.5),
    ("Compilers", 6, 1.2),
    ("Distributed Systems", 6, 2.0),
    ("Machine Learning", 6, 3.5),
    ("Smartphones", 7, 4.0),
    ("Laptops", 7, 2.0),
    ("Cameras", 7, 1.5),
    ("Astronomy", 8, 2.0),
    ("Physics", 8, 1.8),
    ("Biology", 8, 1.5),
    ("Mathematics", 8, 1.6),
    ("Climate", 8, 2.2),
    ("Science Fiction Films", 9, 3.0),
    ("Documentaries", 9, 1.4),
    ("Animation", 9, 2.4),
    ("Classic Cinema", 9, 1.1),
    ("Poetry", 10, 1.0),
    ("Novels", 10, 2.2),
    ("Philosophy", 10, 1.3),
    ("Backpacking", 11, 2.0),
    ("Mountaineering", 11, 1.2),
    ("Beaches", 11, 2.5),
    ("Strategy Games", 12, 2.0),
    ("Role-Playing Games", 12, 2.4),
    ("Chess", 12, 1.6),
    ("Photography", 0, 3.0),
    ("Cooking", 4, 3.2),
    ("Running", 2, 2.6),
    ("Yoga", 2, 1.8),
];

impl Tags {
    /// Estimated resident heap bytes (tag structs, built tag-name strings,
    /// per-country and cumulative-weight vectors).
    pub fn heap_bytes(&self) -> usize {
        self.classes.len() * std::mem::size_of::<TagClassDef>()
            + self.tags.len() * std::mem::size_of::<TagDef>()
            + self.tags.iter().map(|t| t.name.len()).sum::<usize>()
            + self
                .by_country
                .iter()
                .map(|x| std::mem::size_of::<Vec<usize>>() + x.len() * 8)
                .sum::<usize>()
            + self.global.len() * 8
            + self.cum_all.len() * std::mem::size_of::<f64>()
    }

    /// Build the dictionary for `country_count` countries (aligned with the
    /// [`crate::dict::Places`] indices).
    pub fn build(country_count: usize) -> Tags {
        let places = crate::dict::places::Places::build();
        assert_eq!(places.country_count(), country_count);
        let classes: Vec<TagClassDef> =
            CLASSES.iter().map(|&(name, parent)| TagClassDef { name, parent }).collect();

        let mut tags = Vec::new();
        let mut by_country = vec![Vec::new(); country_count];
        let mut global = Vec::new();

        for (ci, c) in places.countries().iter().enumerate() {
            // Country weight also boosts the tag's global popularity.
            let w = 1.0 + c.weight * 0.5;
            for (name, class) in [
                (format!("Music of {}", c.name), 1usize),
                (format!("{} Football", c.name), 2),
                (format!("Politics of {}", c.name), 3),
                (format!("{} Cuisine", c.name), 4),
            ] {
                by_country[ci].push(tags.len());
                tags.push(TagDef { name, class, country: Some(ci), weight: w });
            }
        }
        for &(name, class, weight) in GLOBAL_TAGS {
            global.push(tags.len());
            tags.push(TagDef { name: name.to_string(), class, country: None, weight });
        }

        let mut cum_all = Vec::with_capacity(tags.len());
        let mut total = 0.0;
        for t in &tags {
            total += t.weight;
            cum_all.push(total);
        }
        Tags { classes, tags, by_country, global, cum_all }
    }

    /// Number of tags.
    pub fn tag_count(&self) -> usize {
        self.tags.len()
    }

    /// Number of tag classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Tag definition by index.
    pub fn tag(&self, idx: usize) -> &TagDef {
        &self.tags[idx]
    }

    /// Tag class by index.
    pub fn class(&self, idx: usize) -> &TagClassDef {
        &self.classes[idx]
    }

    /// Find a tag class by name.
    pub fn class_by_name(&self, name: &str) -> Option<usize> {
        self.classes.iter().position(|c| c.name == name)
    }

    /// Find a tag by name.
    pub fn tag_by_name(&self, name: &str) -> Option<usize> {
        self.tags.iter().position(|t| t.name == name)
    }

    /// All class indices that are `class` or transitively below it.
    pub fn class_descendants(&self, class: usize) -> Vec<usize> {
        let mut out = vec![class];
        let mut i = 0;
        while i < out.len() {
            let cur = out[i];
            for (k, c) in self.classes.iter().enumerate() {
                if c.parent == Some(cur) {
                    out.push(k);
                }
            }
            i += 1;
        }
        out
    }

    /// Sample one tag, biased toward the person's home country: with
    /// probability `local_prob` pick among the country's own tags, else
    /// sample all tags by popularity weight.
    pub fn sample_interest(&self, rng: &mut Rng, country: CountryIdx, local_prob: f64) -> usize {
        if rng.chance(local_prob) {
            let local = &self.by_country[country];
            local[rng.index(local.len())]
        } else {
            rng.weighted_index(&self.cum_all)
        }
    }

    /// Sample `n` distinct interests for a person from `country`.
    pub fn sample_interest_set(&self, rng: &mut Rng, country: CountryIdx, n: usize) -> Vec<usize> {
        let n = n.min(self.tags.len());
        let mut out: Vec<usize> = Vec::with_capacity(n);
        // Bounded retry loop; fall back to linear fill if the space is tiny.
        let mut attempts = 0;
        while out.len() < n && attempts < n * 20 {
            let t = self.sample_interest(rng, country, 0.45);
            if !out.contains(&t) {
                out.push(t);
            }
            attempts += 1;
        }
        let mut next = 0;
        while out.len() < n {
            if !out.contains(&next) {
                out.push(next);
            }
            next += 1;
        }
        out
    }

    /// Global tag indices (no country link).
    pub fn global_tags(&self) -> &[usize] {
        &self.global
    }

    /// Tag indices linked to `country`.
    pub fn country_tags(&self, country: CountryIdx) -> &[usize] {
        &self.by_country[country]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, Stream};

    #[test]
    fn hierarchy_is_rooted_and_acyclic() {
        let t = Tags::build(crate::dict::places::Places::build().country_count());
        for (i, c) in (0..t.class_count()).map(|i| (i, t.class(i))) {
            match c.parent {
                None => assert_eq!(i, 0, "only Thing is a root"),
                Some(p) => assert!(p < i, "parents precede children"),
            }
        }
    }

    #[test]
    fn descendants_include_self_and_children() {
        let t = Tags::build(crate::dict::places::Places::build().country_count());
        let tech = t.class_by_name("Technology").unwrap();
        let desc = t.class_descendants(tech);
        assert!(desc.contains(&tech));
        assert!(desc.contains(&t.class_by_name("Programming").unwrap()));
        assert!(desc.contains(&t.class_by_name("Gadgets").unwrap()));
        assert!(!desc.contains(&t.class_by_name("Film").unwrap()));
    }

    #[test]
    fn interests_are_location_correlated() {
        let places = crate::dict::places::Places::build();
        let t = Tags::build(places.country_count());
        let de = places.country_by_name("Germany").unwrap();
        let mut rng = Rng::for_entity(7, Stream::Interests, 0);
        let n = 10_000;
        let local = (0..n)
            .filter(|_| t.tag(t.sample_interest(&mut rng, de, 0.45)).country == Some(de))
            .count();
        let frac = local as f64 / n as f64;
        // 45% direct-local probability plus a sliver from the weighted path.
        assert!(frac > 0.40 && frac < 0.60, "local fraction {frac}");
    }

    #[test]
    fn interest_sets_are_distinct() {
        let places = crate::dict::places::Places::build();
        let t = Tags::build(places.country_count());
        let mut rng = Rng::for_entity(8, Stream::Interests, 3);
        let set = t.sample_interest_set(&mut rng, 0, 12);
        assert_eq!(set.len(), 12);
        let mut sorted = set.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 12);
    }

    #[test]
    fn tag_names_are_unique() {
        let t = Tags::build(crate::dict::places::Places::build().country_count());
        let mut names: Vec<&str> = (0..t.tag_count()).map(|i| t.tag(i).name.as_str()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
