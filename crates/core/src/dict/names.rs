//! First- and last-name dictionaries with location/gender correlation.
//!
//! Table 1: `(person.location, person.gender)` determines the first-name
//! distribution; `person.location` determines the last-name distribution.
//! The mechanism follows §2.1: the distribution *shape* is the same skewed
//! exponential everywhere, but the rank order of names depends on the
//! correlation parameter (the country). With small probability a person
//! draws from another country's pool — "there are Germans with Chinese
//! names, but these are infrequent".
//!
//! The German and Chinese pools open with the paper's Table 2 top-10 names
//! so the Table 2 reproduction is directly comparable.

use crate::dict::places::CountryIdx;
use crate::rng::Rng;

/// Person gender. The SNB schema stores it as a string; we keep an enum and
/// render on serialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gender {
    /// Serialized as `"male"`.
    Male,
    /// Serialized as `"female"`.
    Female,
}

impl Gender {
    /// LDBC CSV representation.
    pub fn as_str(self) -> &'static str {
        match self {
            Gender::Male => "male",
            Gender::Female => "female",
        }
    }
}

/// Name pools per country.
#[derive(Debug)]
pub struct Names {
    /// `male[c]` / `female[c]` / `last[c]` are the pools for country `c`.
    male: Vec<&'static [&'static str]>,
    female: Vec<&'static [&'static str]>,
    last: Vec<&'static [&'static str]>,
}

/// Probability of drawing from the home country's pool rather than a random
/// foreign pool.
const LOCAL_POOL_PROB: f64 = 0.88;
/// Exponential skew of rank popularity within a pool (rank 0 dominates).
const RANK_SKEW: f64 = 0.35;

#[rustfmt::skip]
mod data {
    // Pools are ordered by popularity rank. Germany and China lead with the
    // paper's Table 2 lists (they appear there as first names).
    pub const DE_MALE: &[&str] = &["Karl", "Hans", "Wolfgang", "Fritz", "Rudolf", "Walter",
        "Franz", "Paul", "Otto", "Wilhelm", "Heinz", "Jurgen", "Klaus", "Stefan", "Uwe"];
    pub const DE_FEMALE: &[&str] = &["Anna", "Ursula", "Monika", "Petra", "Sabine", "Renate",
        "Helga", "Karin", "Brigitte", "Ingrid", "Erika", "Christa", "Gisela", "Heike"];
    pub const DE_LAST: &[&str] = &["Muller", "Schmidt", "Schneider", "Fischer", "Weber",
        "Meyer", "Wagner", "Becker", "Schulz", "Hoffmann", "Koch", "Bauer", "Richter"];

    pub const CN_MALE: &[&str] = &["Yang", "Chen", "Wei", "Lei", "Jun", "Jie", "Li", "Hao",
        "Lin", "Peng", "Bin", "Cheng", "Feng", "Gang", "Hui"];
    pub const CN_FEMALE: &[&str] = &["Yan", "Fang", "Na", "Xiu", "Ying", "Hua", "Juan",
        "Min", "Jing", "Lan", "Mei", "Qian", "Rui", "Ting"];
    pub const CN_LAST: &[&str] = &["Wang", "Zhang", "Liu", "Zhao", "Huang", "Zhou", "Wu",
        "Xu", "Sun", "Hu", "Zhu", "Gao", "Lin", "He"];

    pub const EN_MALE: &[&str] = &["James", "John", "Robert", "Michael", "William", "David",
        "Thomas", "Charles", "Daniel", "Matthew", "George", "Andrew", "Edward", "Peter"];
    pub const EN_FEMALE: &[&str] = &["Mary", "Elizabeth", "Jennifer", "Linda", "Sarah",
        "Susan", "Jessica", "Karen", "Margaret", "Emily", "Laura", "Rachel", "Alice"];
    pub const EN_LAST: &[&str] = &["Smith", "Johnson", "Williams", "Brown", "Jones",
        "Miller", "Davis", "Wilson", "Taylor", "Clark", "Walker", "Hall", "Young"];

    pub const IN_MALE: &[&str] = &["Raj", "Amit", "Arjun", "Vijay", "Ravi", "Sanjay",
        "Rahul", "Anil", "Suresh", "Deepak", "Manoj", "Ashok", "Vikram", "Rakesh"];
    pub const IN_FEMALE: &[&str] = &["Priya", "Anjali", "Sunita", "Kavita", "Pooja",
        "Neha", "Asha", "Meena", "Rekha", "Geeta", "Lakshmi", "Sita", "Radha"];
    pub const IN_LAST: &[&str] = &["Sharma", "Patel", "Singh", "Kumar", "Gupta", "Verma",
        "Reddy", "Rao", "Nair", "Iyer", "Mehta", "Joshi", "Das"];

    pub const ES_MALE: &[&str] = &["Jose", "Juan", "Carlos", "Luis", "Miguel", "Antonio",
        "Francisco", "Pedro", "Manuel", "Javier", "Diego", "Fernando", "Pablo"];
    pub const ES_FEMALE: &[&str] = &["Maria", "Carmen", "Ana", "Isabel", "Lucia", "Rosa",
        "Elena", "Pilar", "Teresa", "Sofia", "Laura", "Marta", "Cristina"];
    pub const ES_LAST: &[&str] = &["Garcia", "Rodriguez", "Martinez", "Lopez", "Gonzalez",
        "Hernandez", "Perez", "Sanchez", "Ramirez", "Torres", "Flores", "Diaz"];

    pub const RU_MALE: &[&str] = &["Ivan", "Dmitri", "Sergei", "Alexei", "Mikhail",
        "Nikolai", "Andrei", "Vladimir", "Pavel", "Boris", "Oleg", "Viktor"];
    pub const RU_FEMALE: &[&str] = &["Olga", "Natalia", "Elena", "Irina", "Tatiana",
        "Svetlana", "Anna", "Ekaterina", "Marina", "Ludmila", "Galina", "Vera"];
    pub const RU_LAST: &[&str] = &["Ivanov", "Smirnov", "Kuznetsov", "Popov", "Sokolov",
        "Lebedev", "Kozlov", "Novikov", "Morozov", "Petrov", "Volkov", "Soloviev"];

    pub const JP_MALE: &[&str] = &["Hiroshi", "Takashi", "Kenji", "Akira", "Yuki",
        "Satoshi", "Kazuo", "Makoto", "Shigeru", "Taro", "Jiro", "Haruto"];
    pub const JP_FEMALE: &[&str] = &["Yuko", "Keiko", "Akiko", "Yumi", "Naoko", "Sakura",
        "Hanako", "Emi", "Mariko", "Tomoko", "Aiko", "Rina"];
    pub const JP_LAST: &[&str] = &["Sato", "Suzuki", "Takahashi", "Tanaka", "Watanabe",
        "Ito", "Yamamoto", "Nakamura", "Kobayashi", "Kato", "Yoshida", "Yamada"];

    pub const AR_MALE: &[&str] = &["Mohamed", "Ahmed", "Mahmoud", "Mustafa", "Ali",
        "Hassan", "Hussein", "Omar", "Khaled", "Ibrahim", "Youssef", "Tarek"];
    pub const AR_FEMALE: &[&str] = &["Fatima", "Aisha", "Mariam", "Zainab", "Layla",
        "Nour", "Huda", "Salma", "Amira", "Dalia", "Rania", "Yasmin"];
    pub const AR_LAST: &[&str] = &["Hassan", "Ali", "Ahmed", "Mohamed", "Ibrahim",
        "Mahmoud", "Abdallah", "Saleh", "Farouk", "Nasser", "Khalil", "Aziz"];
}

/// Which pool family a country uses: (male, female, last).
type Pool = (&'static [&'static str], &'static [&'static str], &'static [&'static str]);

fn pool_for(country_name: &str) -> Pool {
    use data::*;
    match country_name {
        "Germany" => (DE_MALE, DE_FEMALE, DE_LAST),
        "China" | "Vietnam" => (CN_MALE, CN_FEMALE, CN_LAST),
        "India" | "Pakistan" => (IN_MALE, IN_FEMALE, IN_LAST),
        "Spain" | "Mexico" | "Argentina" | "Brazil" | "Philippines" | "Italy" | "France" => {
            (ES_MALE, ES_FEMALE, ES_LAST)
        }
        "Russia" | "Poland" => (RU_MALE, RU_FEMALE, RU_LAST),
        "Japan" => (JP_MALE, JP_FEMALE, JP_LAST),
        "Egypt" | "Turkey" | "Indonesia" => (AR_MALE, AR_FEMALE, AR_LAST),
        // Anglophone & remaining countries use the English pool.
        _ => (EN_MALE, EN_FEMALE, EN_LAST),
    }
}

impl Names {
    /// Estimated resident heap bytes: three vectors of fat pointers into
    /// static pools.
    pub fn heap_bytes(&self) -> usize {
        (self.male.len() + self.female.len() + self.last.len()) * std::mem::size_of::<&[&str]>()
    }

    /// Build per-country pools. `country_names` must align with
    /// [`crate::dict::Places`] country indices; we take the names themselves
    /// from [`crate::dict::Dictionaries::global`]'s place table.
    pub fn build(country_count: usize) -> Names {
        let places = crate::dict::places::Places::build();
        assert_eq!(places.country_count(), country_count);
        let mut male = Vec::with_capacity(country_count);
        let mut female = Vec::with_capacity(country_count);
        let mut last = Vec::with_capacity(country_count);
        for c in places.countries() {
            let (m, f, l) = pool_for(c.name);
            male.push(m);
            female.push(f);
            last.push(l);
        }
        Names { male, female, last }
    }

    /// Draw a first name for a person of `gender` living in `country`.
    pub fn first_name(&self, rng: &mut Rng, country: CountryIdx, gender: Gender) -> &'static str {
        let country = self.effective_country(rng, country);
        let pool = match gender {
            Gender::Male => self.male[country],
            Gender::Female => self.female[country],
        };
        pool[rng.skewed_index(pool.len(), RANK_SKEW)]
    }

    /// Draw a last name for a person living in `country`.
    pub fn last_name(&self, rng: &mut Rng, country: CountryIdx) -> &'static str {
        let country = self.effective_country(rng, country);
        let pool = self.last[country];
        pool[rng.skewed_index(pool.len(), RANK_SKEW)]
    }

    /// With probability [`LOCAL_POOL_PROB`] keep the home country; otherwise
    /// jump to a uniformly random country's pool (infrequent foreign names).
    fn effective_country(&self, rng: &mut Rng, country: CountryIdx) -> CountryIdx {
        if rng.chance(LOCAL_POOL_PROB) {
            country
        } else {
            rng.index(self.male.len())
        }
    }
}

/// Resolve a name string back to its `&'static str` in some pool (used by
/// WAL recovery, which must reconstruct `Person` rows).
pub fn intern_name(name: &str) -> Option<&'static str> {
    use std::collections::HashMap;
    use std::sync::OnceLock;
    static INDEX: OnceLock<HashMap<&'static str, &'static str>> = OnceLock::new();
    let index = INDEX.get_or_init(|| {
        let mut m = HashMap::new();
        for pool in [
            data::DE_MALE,
            data::DE_FEMALE,
            data::DE_LAST,
            data::CN_MALE,
            data::CN_FEMALE,
            data::CN_LAST,
            data::EN_MALE,
            data::EN_FEMALE,
            data::EN_LAST,
            data::IN_MALE,
            data::IN_FEMALE,
            data::IN_LAST,
            data::ES_MALE,
            data::ES_FEMALE,
            data::ES_LAST,
            data::RU_MALE,
            data::RU_FEMALE,
            data::RU_LAST,
            data::JP_MALE,
            data::JP_FEMALE,
            data::JP_LAST,
            data::AR_MALE,
            data::AR_FEMALE,
            data::AR_LAST,
        ] {
            for &n in pool {
                m.insert(n, n);
            }
        }
        m
    });
    index.get(name).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::Dictionaries;
    use crate::rng::{Rng, Stream};
    use std::collections::HashMap;

    fn top_names(country: &str, gender: Gender, n_draws: usize) -> Vec<(String, usize)> {
        let d = Dictionaries::global();
        let c = d.places.country_by_name(country).unwrap();
        let mut rng = Rng::for_entity(99, Stream::PersonAttrs, c as u64);
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for _ in 0..n_draws {
            *counts.entry(d.names.first_name(&mut rng, c, gender)).or_default() += 1;
        }
        let mut v: Vec<(String, usize)> =
            counts.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v
    }

    #[test]
    fn german_top_names_match_paper_table2() {
        // Paper Table 2: Karl, Hans, Wolfgang lead the German male list.
        let tops = top_names("Germany", Gender::Male, 20_000);
        let top3: Vec<&str> = tops.iter().take(3).map(|(n, _)| n.as_str()).collect();
        assert_eq!(top3, vec!["Karl", "Hans", "Wolfgang"]);
    }

    #[test]
    fn chinese_top_names_match_paper_table2() {
        let tops = top_names("China", Gender::Male, 20_000);
        let top3: Vec<&str> = tops.iter().take(3).map(|(n, _)| n.as_str()).collect();
        assert_eq!(top3, vec!["Yang", "Chen", "Wei"]);
    }

    #[test]
    fn foreign_names_are_infrequent_but_present() {
        // Some Germans should carry names from other pools, but rarely.
        let tops = top_names("Germany", Gender::Male, 50_000);
        let total: usize = tops.iter().map(|(_, c)| c).sum();
        let german: usize =
            tops.iter().filter(|(n, _)| data::DE_MALE.contains(&n.as_str())).map(|(_, c)| c).sum();
        let frac = german as f64 / total as f64;
        assert!(frac > 0.80 && frac < 0.99, "local fraction {frac}");
    }

    #[test]
    fn intern_roundtrips_known_names() {
        assert_eq!(intern_name("Karl"), Some("Karl"));
        assert_eq!(intern_name("Yang"), Some("Yang"));
        assert_eq!(intern_name("NotAName"), None);
    }

    #[test]
    fn gender_pools_differ() {
        let male = top_names("Japan", Gender::Male, 5_000);
        let female = top_names("Japan", Gender::Female, 5_000);
        assert_ne!(male[0].0, female[0].0);
    }

    #[test]
    fn last_names_follow_country() {
        let d = Dictionaries::global();
        let c = d.places.country_by_name("Russia").unwrap();
        let mut rng = Rng::for_entity(5, Stream::PersonAttrs, 1);
        let mut russian = 0;
        let n = 10_000;
        for _ in 0..n {
            if data::RU_LAST.contains(&d.names.last_name(&mut rng, c)) {
                russian += 1;
            }
        }
        assert!(russian as f64 / n as f64 > 0.8);
    }
}
