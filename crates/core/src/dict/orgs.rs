//! Universities and companies.
//!
//! Table 1: `person.location` determines `person.university` (nearby
//! universities) and `person.company` (companies in the country);
//! `person.employer` shapes `person.email` (`@company`, `@university`).
//! Universities additionally anchor the study-location correlation
//! dimension of friendship generation (§2.3).

use crate::dict::places::{CityIdx, CountryIdx, Places};
use crate::rng::Rng;

/// A university located in a specific city.
#[derive(Debug)]
pub struct University {
    /// Display name.
    pub name: String,
    /// City the campus is in.
    pub city: CityIdx,
    /// Country (denormalized from the city for fast filtering).
    pub country: CountryIdx,
}

/// A company operating in a country.
#[derive(Debug)]
pub struct Company {
    /// Display name.
    pub name: String,
    /// Country of incorporation.
    pub country: CountryIdx,
}

/// The organisation dictionary.
#[derive(Debug)]
pub struct Organisations {
    universities: Vec<University>,
    companies: Vec<Company>,
    /// Universities per country (indices into `universities`).
    unis_by_country: Vec<Vec<usize>>,
    /// Companies per country (indices into `companies`).
    companies_by_country: Vec<Vec<usize>>,
}

const UNI_SUFFIXES: &[&str] = &["University", "Institute of Technology", "Polytechnic"];
const COMPANY_STEMS: &[&str] =
    &["Dyna", "Inter", "Global", "Omni", "Neo", "Prime", "Vertex", "Apex"];
const COMPANY_SUFFIXES: &[&str] = &["Systems", "Industries", "Logistics", "Media", "Labs"];

impl Organisations {
    /// Estimated resident heap bytes (structs plus built name strings and
    /// per-country index vectors).
    pub fn heap_bytes(&self) -> usize {
        let vecvec = |v: &Vec<Vec<usize>>| {
            v.iter().map(|x| std::mem::size_of::<Vec<usize>>() + x.len() * 8).sum::<usize>()
        };
        self.universities.len() * std::mem::size_of::<University>()
            + self.universities.iter().map(|u| u.name.len()).sum::<usize>()
            + self.companies.len() * std::mem::size_of::<Company>()
            + self.companies.iter().map(|c| c.name.len()).sum::<usize>()
            + vecvec(&self.unis_by_country)
            + vecvec(&self.companies_by_country)
    }

    /// Derive universities (per city) and companies (per country) from the
    /// place dictionary. Names are synthesized deterministically.
    pub fn build(places: &Places) -> Organisations {
        let mut universities = Vec::new();
        let mut companies = Vec::new();
        let mut unis_by_country = vec![Vec::new(); places.country_count()];
        let mut companies_by_country = vec![Vec::new(); places.country_count()];

        for (ci, country) in places.countries().iter().enumerate() {
            // One university per city, plus a flagship national one in the
            // first city.
            for (k, city_idx) in country.cities.clone().enumerate() {
                let city = places.city(city_idx);
                let suffix = UNI_SUFFIXES[k % UNI_SUFFIXES.len()];
                unis_by_country[ci].push(universities.len());
                universities.push(University {
                    name: format!("{} {}", city.name, suffix),
                    city: city_idx,
                    country: ci,
                });
            }
            // A handful of companies per country.
            for k in 0..5 {
                let stem = COMPANY_STEMS[(ci + k) % COMPANY_STEMS.len()];
                let suffix = COMPANY_SUFFIXES[(ci * 3 + k) % COMPANY_SUFFIXES.len()];
                companies_by_country[ci].push(companies.len());
                companies.push(Company {
                    name: format!("{} {} {}", stem, suffix, country.name),
                    country: ci,
                });
            }
        }
        Organisations { universities, companies, unis_by_country, companies_by_country }
    }

    /// All universities.
    pub fn universities(&self) -> &[University] {
        &self.universities
    }

    /// All companies.
    pub fn companies(&self) -> &[Company] {
        &self.companies
    }

    /// University by global index.
    pub fn university(&self, idx: usize) -> &University {
        &self.universities[idx]
    }

    /// Company by global index.
    pub fn company(&self, idx: usize) -> &Company {
        &self.companies[idx]
    }

    /// Pick a university for a resident of `country`: usually local
    /// ("nearby universities"), occasionally abroad.
    pub fn sample_university(&self, rng: &mut Rng, country: CountryIdx) -> usize {
        if rng.chance(0.9) {
            let local = &self.unis_by_country[country];
            local[rng.index(local.len())]
        } else {
            rng.index(self.universities.len())
        }
    }

    /// Pick an employer for a resident of `country` ("in country").
    pub fn sample_company(&self, rng: &mut Rng, country: CountryIdx) -> usize {
        if rng.chance(0.95) {
            let local = &self.companies_by_country[country];
            local[rng.index(local.len())]
        } else {
            rng.index(self.companies.len())
        }
    }

    /// Companies registered in `country` (used by complex read Q11).
    pub fn companies_in_country(&self, country: CountryIdx) -> &[usize] {
        &self.companies_by_country[country]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, Stream};

    #[test]
    fn every_country_has_orgs() {
        let places = Places::build();
        let orgs = Organisations::build(&places);
        for ci in 0..places.country_count() {
            assert!(!orgs.unis_by_country[ci].is_empty());
            assert_eq!(orgs.companies_by_country[ci].len(), 5);
        }
    }

    #[test]
    fn university_sampling_is_mostly_local() {
        let places = Places::build();
        let orgs = Organisations::build(&places);
        let mut rng = Rng::for_entity(1, Stream::PersonAttrs, 0);
        let germany = places.country_by_name("Germany").unwrap();
        let n = 10_000;
        let local = (0..n)
            .filter(|_| {
                orgs.university(orgs.sample_university(&mut rng, germany)).country == germany
            })
            .count();
        let frac = local as f64 / n as f64;
        assert!(frac > 0.85, "local fraction {frac}");
        assert!(frac < 1.0, "some study abroad");
    }

    #[test]
    fn company_names_are_unique() {
        let places = Places::build();
        let orgs = Organisations::build(&places);
        let mut names: Vec<&str> = orgs.companies().iter().map(|c| c.name.as_str()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn companies_in_country_belong_to_it() {
        let places = Places::build();
        let orgs = Organisations::build(&places);
        for ci in 0..places.country_count() {
            for &k in orgs.companies_in_country(ci) {
                assert_eq!(orgs.company(k).country, ci);
            }
        }
    }
}
