//! Countries and cities.
//!
//! Persons are assigned a home city (and thereby country) with probability
//! proportional to a population weight; the country then drives the
//! correlated attributes of Table 1 (names, university, company, languages,
//! interests). City coordinates feed the Z-order component of the
//! study-location correlation dimension (§2.3: "the Z-order location of the
//! university's city (bits 31-24)").

/// Index of a country in [`Places`].
pub type CountryIdx = usize;
/// Index of a city in [`Places`].
pub type CityIdx = usize;

/// A country: name, relative population weight, spoken languages.
#[derive(Debug)]
pub struct Country {
    /// Country name.
    pub name: &'static str,
    /// Relative population weight used when sampling person locations.
    pub weight: f64,
    /// Languages spoken (person.languages correlation, Table 1).
    pub languages: &'static [&'static str],
    /// Range of this country's cities in [`Places::cities`].
    pub cities: std::ops::Range<CityIdx>,
}

/// A city with approximate coordinates.
#[derive(Debug)]
pub struct City {
    /// City name.
    pub name: &'static str,
    /// Owning country.
    pub country: CountryIdx,
    /// Approximate latitude, degrees.
    pub lat: f64,
    /// Approximate longitude, degrees.
    pub lon: f64,
}

/// The place dictionary.
#[derive(Debug)]
pub struct Places {
    countries: Vec<Country>,
    cities: Vec<City>,
    /// Cumulative population weights for weighted country sampling.
    cum_weights: Vec<f64>,
}

/// Raw table: (country, weight, languages, [(city, lat, lon); ...]).
type Raw = (&'static str, f64, &'static [&'static str], &'static [(&'static str, f64, f64)]);

#[rustfmt::skip]
const RAW: &[Raw] = &[
    ("China", 19.0, &["zh"], &[
        ("Beijing", 39.9, 116.4), ("Shanghai", 31.2, 121.5), ("Guangzhou", 23.1, 113.3),
        ("Chengdu", 30.6, 104.1), ("Wuhan", 30.6, 114.3)]),
    ("India", 18.0, &["hi", "en"], &[
        ("Mumbai", 19.1, 72.9), ("Delhi", 28.7, 77.1), ("Bangalore", 13.0, 77.6),
        ("Chennai", 13.1, 80.3)]),
    ("United States", 4.4, &["en"], &[
        ("New York", 40.7, -74.0), ("Los Angeles", 34.1, -118.2), ("Chicago", 41.9, -87.6),
        ("Houston", 29.8, -95.4), ("Seattle", 47.6, -122.3)]),
    ("Indonesia", 3.6, &["id"], &[
        ("Jakarta", -6.2, 106.8), ("Surabaya", -7.3, 112.7), ("Bandung", -6.9, 107.6)]),
    ("Brazil", 2.8, &["pt"], &[
        ("Sao Paulo", -23.6, -46.6), ("Rio de Janeiro", -22.9, -43.2), ("Brasilia", -15.8, -47.9)]),
    ("Pakistan", 2.6, &["ur", "en"], &[
        ("Karachi", 24.9, 67.0), ("Lahore", 31.5, 74.3), ("Islamabad", 33.7, 73.0)]),
    ("Russia", 2.0, &["ru"], &[
        ("Moscow", 55.8, 37.6), ("Saint Petersburg", 59.9, 30.3), ("Novosibirsk", 55.0, 82.9)]),
    ("Japan", 1.7, &["ja"], &[
        ("Tokyo", 35.7, 139.7), ("Osaka", 34.7, 135.5), ("Nagoya", 35.2, 136.9)]),
    ("Germany", 1.1, &["de"], &[
        ("Berlin", 52.5, 13.4), ("Munich", 48.1, 11.6), ("Hamburg", 53.6, 10.0),
        ("Leipzig", 51.3, 12.4)]),
    ("Nigeria", 2.3, &["en"], &[
        ("Lagos", 6.5, 3.4), ("Abuja", 9.1, 7.4), ("Kano", 12.0, 8.5)]),
    ("Mexico", 1.7, &["es"], &[
        ("Mexico City", 19.4, -99.1), ("Guadalajara", 20.7, -103.3), ("Monterrey", 25.7, -100.3)]),
    ("Philippines", 1.4, &["tl", "en"], &[
        ("Manila", 14.6, 121.0), ("Cebu", 10.3, 123.9), ("Davao", 7.1, 125.6)]),
    ("Vietnam", 1.3, &["vi"], &[
        ("Hanoi", 21.0, 105.8), ("Ho Chi Minh City", 10.8, 106.6), ("Da Nang", 16.1, 108.2)]),
    ("United Kingdom", 0.9, &["en"], &[
        ("London", 51.5, -0.1), ("Manchester", 53.5, -2.2), ("Edinburgh", 55.9, -3.2)]),
    ("France", 0.9, &["fr"], &[
        ("Paris", 48.9, 2.4), ("Lyon", 45.8, 4.8), ("Marseille", 43.3, 5.4)]),
    ("Italy", 0.8, &["it"], &[
        ("Rome", 41.9, 12.5), ("Milan", 45.5, 9.2), ("Naples", 40.9, 14.3)]),
    ("Spain", 0.6, &["es"], &[
        ("Madrid", 40.4, -3.7), ("Barcelona", 41.4, 2.2), ("Valencia", 39.5, -0.4)]),
    ("Netherlands", 0.24, &["nl", "en"], &[
        ("Amsterdam", 52.4, 4.9), ("Rotterdam", 51.9, 4.5), ("Utrecht", 52.1, 5.1)]),
    ("Sweden", 0.14, &["sv", "en"], &[
        ("Stockholm", 59.3, 18.1), ("Gothenburg", 57.7, 12.0), ("Malmo", 55.6, 13.0)]),
    ("Poland", 0.5, &["pl"], &[
        ("Warsaw", 52.2, 21.0), ("Krakow", 50.1, 19.9), ("Wroclaw", 51.1, 17.0)]),
    ("Turkey", 1.1, &["tr"], &[
        ("Istanbul", 41.0, 29.0), ("Ankara", 39.9, 32.9), ("Izmir", 38.4, 27.1)]),
    ("Egypt", 1.3, &["ar"], &[
        ("Cairo", 30.0, 31.2), ("Alexandria", 31.2, 29.9), ("Giza", 30.0, 31.2)]),
    ("Canada", 0.5, &["en", "fr"], &[
        ("Toronto", 43.7, -79.4), ("Vancouver", 49.3, -123.1), ("Montreal", 45.5, -73.6)]),
    ("Australia", 0.35, &["en"], &[
        ("Sydney", -33.9, 151.2), ("Melbourne", -37.8, 145.0), ("Brisbane", -27.5, 153.0)]),
    ("Argentina", 0.6, &["es"], &[
        ("Buenos Aires", -34.6, -58.4), ("Cordoba", -31.4, -64.2), ("Rosario", -33.0, -60.7)]),
];

impl Places {
    /// Estimated resident heap bytes (country/city vectors; name strings
    /// are static).
    pub fn heap_bytes(&self) -> usize {
        self.countries.len() * std::mem::size_of::<Country>()
            + self.cities.len() * std::mem::size_of::<City>()
            + self.cum_weights.len() * std::mem::size_of::<f64>()
    }

    /// Build the place dictionary from the embedded table.
    pub fn build() -> Places {
        let mut countries = Vec::with_capacity(RAW.len());
        let mut cities = Vec::new();
        let mut cum_weights = Vec::with_capacity(RAW.len());
        let mut total = 0.0;
        for (ci, (name, weight, languages, raw_cities)) in RAW.iter().enumerate() {
            let start = cities.len();
            for (cname, lat, lon) in raw_cities.iter() {
                cities.push(City { name: cname, country: ci, lat: *lat, lon: *lon });
            }
            total += weight;
            cum_weights.push(total);
            countries.push(Country {
                name,
                weight: *weight,
                languages,
                cities: start..cities.len(),
            });
        }
        Places { countries, cities, cum_weights }
    }

    /// Number of countries.
    pub fn country_count(&self) -> usize {
        self.countries.len()
    }

    /// Number of cities across all countries.
    pub fn city_count(&self) -> usize {
        self.cities.len()
    }

    /// Country by index.
    pub fn country(&self, idx: CountryIdx) -> &Country {
        &self.countries[idx]
    }

    /// City by index.
    pub fn city(&self, idx: CityIdx) -> &City {
        &self.cities[idx]
    }

    /// All countries.
    pub fn countries(&self) -> &[Country] {
        &self.countries
    }

    /// Look up a country index by name (used by experiment harnesses).
    pub fn country_by_name(&self, name: &str) -> Option<CountryIdx> {
        self.countries.iter().position(|c| c.name == name)
    }

    /// Sample a country index weighted by population.
    pub fn sample_country(&self, rng: &mut crate::rng::Rng) -> CountryIdx {
        rng.weighted_index(&self.cum_weights)
    }

    /// Sample a city uniformly within a country.
    pub fn sample_city(&self, rng: &mut crate::rng::Rng, country: CountryIdx) -> CityIdx {
        let range = &self.countries[country].cities;
        range.start + rng.index(range.len())
    }

    /// 8-bit Z-order (Morton) code of a city's coordinates: interleaves the
    /// top 4 bits of quantized latitude and longitude. Occupies bits 31-24 of
    /// the study-location correlation key, exactly the bit budget the paper
    /// allocates.
    pub fn city_zorder(&self, idx: CityIdx) -> u8 {
        let c = &self.cities[idx];
        let qlat = (((c.lat + 90.0) / 180.0) * 15.0).round() as u8; // 4 bits
        let qlon = (((c.lon + 180.0) / 360.0) * 15.0).round() as u8; // 4 bits
        let mut z = 0u8;
        for bit in 0..4 {
            z |= ((qlon >> bit) & 1) << (2 * bit);
            z |= ((qlat >> bit) & 1) << (2 * bit + 1);
        }
        z
    }
}

/// Resolve a language code back to its `&'static str` (WAL recovery).
pub fn intern_language(lang: &str) -> Option<&'static str> {
    for (_, _, languages, _) in RAW {
        for &l in *languages {
            if l == lang {
                return Some(l);
            }
        }
    }
    (lang == "en").then_some("en")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, Stream};

    #[test]
    fn table_is_well_formed() {
        let p = Places::build();
        assert!(p.country_count() >= 20);
        for (ci, c) in p.countries().iter().enumerate() {
            assert!(!c.cities.is_empty(), "{} has no cities", c.name);
            assert!(!c.languages.is_empty());
            for city_idx in c.cities.clone() {
                assert_eq!(p.city(city_idx).country, ci);
            }
        }
    }

    #[test]
    fn population_weighting_prefers_large_countries() {
        let p = Places::build();
        let mut rng = Rng::for_entity(1, Stream::PersonAttrs, 0);
        let mut counts = vec![0usize; p.country_count()];
        for _ in 0..50_000 {
            counts[p.sample_country(&mut rng)] += 1;
        }
        let china = p.country_by_name("China").unwrap();
        let sweden = p.country_by_name("Sweden").unwrap();
        assert!(counts[china] > 20 * counts[sweden]);
        // Every country appears.
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn zorder_groups_nearby_cities() {
        let p = Places::build();
        // Cities in the same country should usually share high Z-order bits
        // more than antipodal cities do. Spot-check: Berlin vs Munich closer
        // in Z than Berlin vs Sydney.
        let berlin = p.countries()[p.country_by_name("Germany").unwrap()].cities.start;
        let munich = berlin + 1;
        let sydney = p.countries()[p.country_by_name("Australia").unwrap()].cities.start;
        let zb = p.city_zorder(berlin) as i32;
        let zm = p.city_zorder(munich) as i32;
        let zs = p.city_zorder(sydney) as i32;
        assert!((zb - zm).abs() < (zb - zs).abs());
    }

    #[test]
    fn intern_language_covers_dictionary() {
        let p = Places::build();
        for c in p.countries() {
            for &l in c.languages {
                assert_eq!(intern_language(l), Some(l));
            }
        }
        assert_eq!(intern_language("xx"), None);
    }

    #[test]
    fn city_sampling_stays_in_country() {
        let p = Places::build();
        let mut rng = Rng::for_entity(2, Stream::PersonAttrs, 0);
        for country in 0..p.country_count() {
            for _ in 0..20 {
                let city = p.sample_city(&mut rng, country);
                assert_eq!(p.city(city).country, country);
            }
        }
    }
}
