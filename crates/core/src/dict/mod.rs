//! Embedded dictionaries.
//!
//! DATAGEN sources attribute values (names, universities, companies, tags,
//! message text) from DBpedia (§2.1). This reproduction embeds compact
//! synthetic dictionaries with the same *statistical role*: per-country
//! value pools, skewed rank popularity, and correlation-driven reordering —
//! "the shape of the attribute value distributions is equal (and skewed),
//! but the order of the values from the value dictionaries used in the
//! distribution changes depending on the correlation parameters".
//!
//! The German and Chinese first-name pools are seeded with the paper's own
//! Table 2 top-10 lists so that the Table 2 experiment reproduces visibly.

pub mod names;
pub mod orgs;
pub mod places;
pub mod tags;
pub mod text;

pub use names::Names;
pub use orgs::Organisations;
pub use places::{City, Country, Places};
pub use tags::{TagClassDef, TagDef, Tags};
pub use text::TextGen;

use std::sync::OnceLock;

/// All dictionaries bundled; obtained via [`Dictionaries::global`].
#[derive(Debug)]
pub struct Dictionaries {
    /// Countries and cities.
    pub places: Places,
    /// First/last name pools per country.
    pub names: Names,
    /// Universities and companies per country.
    pub orgs: Organisations,
    /// Tag classes and tags (interests / message topics).
    pub tags: Tags,
}

impl Dictionaries {
    /// Estimated resident heap bytes across all dictionaries — the
    /// process-wide "dictionary" line in the store's memory accounting
    /// (`store.mem.dict_bytes`). Static string pools cost nothing here;
    /// built `String`s and index vectors do.
    pub fn heap_bytes(&self) -> usize {
        self.places.heap_bytes()
            + self.names.heap_bytes()
            + self.orgs.heap_bytes()
            + self.tags.heap_bytes()
    }

    /// The process-wide dictionary set (built once, immutable).
    pub fn global() -> &'static Dictionaries {
        static DICTS: OnceLock<Dictionaries> = OnceLock::new();
        DICTS.get_or_init(|| {
            let places = Places::build();
            let names = Names::build(places.country_count());
            let orgs = Organisations::build(&places);
            let tags = Tags::build(places.country_count());
            Dictionaries { places, names, orgs, tags }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_builds_consistently() {
        let d = Dictionaries::global();
        assert!(d.places.country_count() >= 20);
        assert!(d.tags.tag_count() >= 100);
        // Every university's city belongs to its country.
        for u in d.orgs.universities() {
            let city = d.places.city(u.city);
            assert_eq!(city.country, u.country);
        }
    }
}
