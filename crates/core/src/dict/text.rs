//! Message-text synthesis.
//!
//! The original DATAGEN takes message text from "DBpedia article lines"
//! related to the post's topic (Table 1: `post.topic` determines
//! `post.text`). We synthesize sentences deterministically from the topic
//! tag name and a small word bank, preserving the properties the benchmark
//! depends on: text length distribution (posts longer than comments, with a
//! heavy tail), topic words embedded in the text, and a deterministic
//! mapping from (topic, rng stream) to content.

use crate::rng::Rng;

const OPENERS: &[&str] = &[
    "Thinking about",
    "Just read about",
    "Can't stop discussing",
    "An interesting take on",
    "A deep dive into",
    "Some new thoughts on",
    "Another perspective on",
    "Notes on",
];
const VERBS: &[&str] =
    &["shows", "suggests", "proves", "reminds us", "demonstrates", "hints", "reveals"];
const CLAUSES: &[&str] = &[
    "more than people expect",
    "in surprising ways",
    "against conventional wisdom",
    "for the whole community",
    "despite recent trends",
    "as history repeats itself",
    "with remarkable consistency",
    "beyond the usual debate",
];
const REPLIES: &[&str] = &[
    "ok",
    "great",
    "thanks",
    "not sure about that",
    "LOL",
    "no way",
    "I was thinking the same",
    "good point",
    "maybe",
    "fine",
    "right",
    "duh",
    "roflol",
    "thx",
    "cool story",
];

/// Deterministic text generator.
#[derive(Debug, Clone, Copy)]
pub struct TextGen;

impl TextGen {
    /// Text of a post about `topic`. Length follows a shifted-exponential
    /// sentence count, giving the heavy tail of real article excerpts.
    pub fn post_text(rng: &mut Rng, topic: &str) -> String {
        let sentences = 1 + rng.exponential(0.9) as usize;
        let mut out = String::with_capacity(sentences * 64);
        for i in 0..sentences.min(8) {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(OPENERS[rng.index(OPENERS.len())]);
            out.push(' ');
            out.push_str(topic);
            out.push_str(": it ");
            out.push_str(VERBS[rng.index(VERBS.len())]);
            out.push(' ');
            out.push_str(CLAUSES[rng.index(CLAUSES.len())]);
            out.push('.');
        }
        out
    }

    /// Text of a comment replying in a thread about `topic`. Most comments
    /// are short interjections; a minority are substantial (one sentence on
    /// the topic).
    pub fn comment_text(rng: &mut Rng, topic: &str) -> String {
        if rng.chance(0.66) {
            REPLIES[rng.index(REPLIES.len())].to_string()
        } else {
            let mut out = String::with_capacity(64);
            out.push_str("About ");
            out.push_str(topic);
            out.push_str(", it ");
            out.push_str(VERBS[rng.index(VERBS.len())]);
            out.push(' ');
            out.push_str(CLAUSES[rng.index(CLAUSES.len())]);
            out.push('.');
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, Stream};

    #[test]
    fn post_text_contains_topic() {
        let mut rng = Rng::for_entity(1, Stream::Posts, 0);
        for _ in 0..50 {
            let t = TextGen::post_text(&mut rng, "Rust");
            assert!(t.contains("Rust"));
            assert!(t.ends_with('.'));
        }
    }

    #[test]
    fn posts_are_longer_than_comments_on_average() {
        let mut rng = Rng::for_entity(2, Stream::Posts, 0);
        let n = 2_000;
        let post_len: usize = (0..n).map(|_| TextGen::post_text(&mut rng, "Chess").len()).sum();
        let comment_len: usize =
            (0..n).map(|_| TextGen::comment_text(&mut rng, "Chess").len()).sum();
        assert!(post_len > 2 * comment_len);
    }

    #[test]
    fn text_is_deterministic_per_stream() {
        let mut a = Rng::for_entity(3, Stream::Posts, 42);
        let mut b = Rng::for_entity(3, Stream::Posts, 42);
        assert_eq!(TextGen::post_text(&mut a, "Yoga"), TextGen::post_text(&mut b, "Yoga"));
    }

    #[test]
    fn comment_lengths_are_bimodal() {
        let mut rng = Rng::for_entity(4, Stream::Comments, 0);
        let lens: Vec<usize> =
            (0..2_000).map(|_| TextGen::comment_text(&mut rng, "Poetry").len()).collect();
        let short = lens.iter().filter(|&&l| l < 25).count();
        let long = lens.iter().filter(|&&l| l >= 25).count();
        assert!(short > 0 && long > 0);
        assert!(short > long, "interjections dominate");
    }
}
