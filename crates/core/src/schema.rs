//! The SNB entity schema.
//!
//! §2: "Its schema has 11 entities connected by 20 relations [...] The main
//! entities are: Persons, Tags, Forums, Messages (Posts, Comments and
//! Photos), Likes, Organizations, and Places." Tags, Places and
//! Organisations are dimension-like and live in the static
//! [`crate::dict::Dictionaries`]; the dynamic entities generated per-dataset
//! are defined here as plain value types shared by the generator, the store
//! and the CSV serializer.
//!
//! Photos are modelled as posts without explicit content in an album forum
//! (the original treats them as a `Post` subtype; nothing in the Interactive
//! workload distinguishes them beyond that).

use crate::dict::names::Gender;
use crate::id::{ForumId, MessageId, OrganisationId, PersonId, TagId};
use crate::time::SimTime;

/// Browsers used for the `browserUsed` attribute.
pub const BROWSERS: &[&str] = &["Chrome", "Firefox", "Internet Explorer", "Safari", "Opera"];

/// Resolve a browser name back to its `&'static str` (WAL recovery).
pub fn intern_browser(name: &str) -> Option<&'static str> {
    BROWSERS.iter().find(|&&b| b == name).copied()
}

/// A member of the social network.
#[derive(Debug, Clone)]
pub struct Person {
    /// Identifier; dense, increasing with `creation_date`.
    pub id: PersonId,
    /// Given name, correlated with location and gender (Table 1).
    pub first_name: &'static str,
    /// Family name, correlated with location.
    pub last_name: &'static str,
    /// Gender.
    pub gender: Gender,
    /// Date of birth (before `creation_date`).
    pub birthday: SimTime,
    /// When the account was created.
    pub creation_date: SimTime,
    /// Home city (index into the place dictionary).
    pub city: usize,
    /// Home country (denormalized from `city`).
    pub country: usize,
    /// Browser used.
    pub browser: &'static str,
    /// IPv4 address as dotted string, loosely tied to the country.
    pub location_ip: String,
    /// Languages spoken (country languages, possibly plus English).
    pub languages: Vec<&'static str>,
    /// Email addresses (`@company` / `@university`, Table 1).
    pub emails: Vec<String>,
    /// Interest tags; drive forum membership and post topics.
    pub interests: Vec<TagId>,
    /// University attended, if any.
    pub study_at: Option<StudyAt>,
    /// Employers.
    pub work_at: Vec<WorkAt>,
}

/// `studyAt` relation.
#[derive(Debug, Clone, Copy)]
pub struct StudyAt {
    /// University (dictionary organisation index).
    pub university: OrganisationId,
    /// Graduation class year.
    pub class_year: i32,
}

/// `workAt` relation.
#[derive(Debug, Clone, Copy)]
pub struct WorkAt {
    /// Company (dictionary organisation index).
    pub company: OrganisationId,
    /// Year employment started.
    pub work_from: i32,
}

/// An (undirected) `knows` friendship edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Knows {
    /// One endpoint (the lower id by convention in generated data).
    pub a: PersonId,
    /// Other endpoint.
    pub b: PersonId,
    /// When the friendship was established; never earlier than either
    /// account's `creation_date` (Table 1 time-ordering rules).
    pub creation_date: SimTime,
}

/// Kind of forum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForumKind {
    /// Personal wall, created with the account.
    Wall,
    /// Interest group with open membership.
    Group,
    /// Photo album.
    Album,
}

/// A forum: a wall, group, or album holding a tree of messages.
#[derive(Debug, Clone)]
pub struct Forum {
    /// Identifier.
    pub id: ForumId,
    /// Title.
    pub title: String,
    /// Moderator (owner).
    pub moderator: PersonId,
    /// Creation date (≥ moderator's account creation, Table 1).
    pub creation_date: SimTime,
    /// Forum topic tags.
    pub tags: Vec<TagId>,
    /// Kind.
    pub kind: ForumKind,
}

/// `hasMember` relation.
#[derive(Debug, Clone, Copy)]
pub struct ForumMembership {
    /// The forum joined.
    pub forum: ForumId,
    /// The joining person.
    pub person: PersonId,
    /// Join date (≥ forum creation).
    pub join_date: SimTime,
}

/// A root message in a forum (posts and photos).
#[derive(Debug, Clone)]
pub struct Post {
    /// Identifier; increases with `creation_date` across all messages.
    pub id: MessageId,
    /// Author (a member of `forum`).
    pub author: PersonId,
    /// Containing forum.
    pub forum: ForumId,
    /// Creation date.
    pub creation_date: SimTime,
    /// Content (empty string for photos; `image_file` set instead).
    pub content: String,
    /// Image file name, for photos.
    pub image_file: Option<String>,
    /// Topic tags.
    pub tags: Vec<TagId>,
    /// Language of the content (spoken by the author, Table 1).
    pub language: &'static str,
    /// Country the post was made from.
    pub country: usize,
}

/// A reply in a discussion tree.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Identifier, shared id space with posts.
    pub id: MessageId,
    /// Author (friend of someone in the thread).
    pub author: PersonId,
    /// Creation date (> parent's creation date).
    pub creation_date: SimTime,
    /// Content.
    pub content: String,
    /// Direct parent (post or comment).
    pub reply_to: MessageId,
    /// Root post of the thread (denormalized for S6/Q12).
    pub root_post: MessageId,
    /// Forum of the root post (denormalized).
    pub forum: ForumId,
    /// Topic tags (subset of the thread topic).
    pub tags: Vec<TagId>,
    /// Country the comment was made from.
    pub country: usize,
}

/// A `likes` edge from a person to a message.
#[derive(Debug, Clone, Copy)]
pub struct Like {
    /// The person who liked.
    pub person: PersonId,
    /// The liked message.
    pub message: MessageId,
    /// When (≥ the message's creation date).
    pub creation_date: SimTime,
}

impl Person {
    /// Birthday month (1-12); used by Q10's horoscope-sign restriction.
    pub fn birthday_month(&self) -> u8 {
        self.birthday.month()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_person() -> Person {
        Person {
            id: PersonId(1),
            first_name: "Karl",
            last_name: "Muller",
            gender: Gender::Male,
            birthday: SimTime::from_ymd(1985, 4, 12),
            creation_date: SimTime::from_ymd(2010, 3, 1),
            city: 0,
            country: 0,
            browser: BROWSERS[0],
            location_ip: "10.0.0.1".to_string(),
            languages: vec!["de"],
            emails: vec!["karl@example.org".to_string()],
            interests: vec![TagId(3)],
            study_at: None,
            work_at: vec![],
        }
    }

    #[test]
    fn birthday_month_extraction() {
        assert_eq!(sample_person().birthday_month(), 4);
    }

    #[test]
    fn intern_browser_roundtrips() {
        assert_eq!(intern_browser("Chrome"), Some("Chrome"));
        assert_eq!(intern_browser("Netscape"), None);
    }

    #[test]
    fn gender_serialization() {
        assert_eq!(Gender::Male.as_str(), "male");
        assert_eq!(Gender::Female.as_str(), "female");
    }

    #[test]
    fn knows_edges_compare_by_value() {
        let k1 = Knows { a: PersonId(1), b: PersonId(2), creation_date: SimTime(5) };
        let k2 = Knows { a: PersonId(1), b: PersonId(2), creation_date: SimTime(5) };
        assert_eq!(k1, k2);
    }
}
