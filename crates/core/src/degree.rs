//! Friendship-degree model.
//!
//! DATAGEN "discretizes the power law distribution given by \[the\] Facebook
//! graph, but scales this according to the size of the network" (§2.3):
//!
//! 1. a target *average* degree is chosen as
//!    `avg_degree = n^(0.512 - 0.028·log10(n))` — at Facebook size
//!    (700 M persons) this yields ≈ 200;
//! 2. each person is assigned a uniform percentile `p` of the Facebook
//!    degree distribution and a target degree uniform between the minimum
//!    and maximum degree at that percentile (Fig. 2b);
//! 3. the target degree is scaled by `avg_degree / fb_avg`.
//!
//! **Substitution** (documented in DESIGN.md): we do not have the Facebook
//! measurement of [Ugander et al. 2011], so the per-percentile maximum-degree
//! curve is synthesized with the same qualitative shape as the paper's
//! Fig. 2b — exponential growth from ≈ 8 at the bottom percentile to ≈ 1200
//! at the top, i.e. a straight line on the figure's log axis — and the
//! scaling step uses the curve's own empirical mean, so the realized average
//! degree matches the paper's formula exactly by construction.

use crate::rng::Rng;
use std::sync::OnceLock;

/// Number of percentile buckets (1..=100).
pub const PERCENTILES: usize = 100;

/// The discretized Facebook-like degree distribution.
#[derive(Debug)]
pub struct DegreeModel {
    /// `max_degree[p]` is the maximum degree of percentile `p` (index 0 is
    /// the lower bound of percentile 1).
    max_degree: [f64; PERCENTILES + 1],
    /// Mean degree implied by drawing a uniform percentile and then a
    /// uniform degree within the percentile's `[min, max]` band.
    mean: f64,
}

impl DegreeModel {
    /// The shared Facebook-shaped model.
    pub fn facebook() -> &'static DegreeModel {
        static MODEL: OnceLock<DegreeModel> = OnceLock::new();
        MODEL.get_or_init(DegreeModel::build_facebook_like)
    }

    fn build_facebook_like() -> DegreeModel {
        let mut max_degree = [0f64; PERCENTILES + 1];
        // Exponential curve: 8·e^(0.05·p); p=0 → 8, p=100 → ≈ 1187.
        for (p, slot) in max_degree.iter_mut().enumerate() {
            *slot = 8.0 * (0.05 * p as f64).exp();
        }
        // Mean of the two-stage draw: percentile uniform, then degree
        // uniform in [max[p-1], max[p]] -> mean of band midpoints.
        let mean =
            (1..=PERCENTILES).map(|p| (max_degree[p - 1] + max_degree[p]) / 2.0).sum::<f64>()
                / PERCENTILES as f64;
        DegreeModel { max_degree, mean }
    }

    /// The paper's average-degree law: `n^(0.512 - 0.028·log10(n))`.
    pub fn avg_degree_for(n_persons: u64) -> f64 {
        if n_persons < 2 {
            return 0.0;
        }
        let n = n_persons as f64;
        n.powf(0.512 - 0.028 * n.log10())
    }

    /// Maximum degree of percentile `p` (1..=100), unscaled — the data behind
    /// the paper's Fig. 2b.
    pub fn max_degree_at_percentile(&self, p: usize) -> f64 {
        assert!((1..=PERCENTILES).contains(&p), "percentile out of range");
        self.max_degree[p]
    }

    /// Mean degree of the unscaled distribution (the stand-in for the real
    /// Facebook average the paper scales against).
    pub fn unscaled_mean(&self) -> f64 {
        self.mean
    }

    /// Draw a target friendship degree for one person in a network of
    /// `n_persons`, following the paper's three-step recipe. Always at least
    /// 1 (the SNB friendship graph is a single connected component of
    /// persons, so isolated persons are not useful).
    pub fn target_degree(&self, rng: &mut Rng, n_persons: u64) -> u32 {
        let p = 1 + rng.below(PERCENTILES as u64) as usize;
        let lo = self.max_degree[p - 1];
        let hi = self.max_degree[p];
        let raw = lo + rng.next_f64() * (hi - lo);
        let scale = Self::avg_degree_for(n_persons) / self.mean;
        (raw * scale).round().max(1.0) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, Stream};

    #[test]
    fn avg_degree_law_matches_paper_anchor() {
        // Paper: at Facebook size (700M persons) the average degree is ~200.
        let avg = DegreeModel::avg_degree_for(700_000_000);
        assert!((190.0..230.0).contains(&avg), "got {avg}");
    }

    #[test]
    fn avg_degree_grows_with_network_size() {
        let small = DegreeModel::avg_degree_for(1_000);
        let mid = DegreeModel::avg_degree_for(100_000);
        let large = DegreeModel::avg_degree_for(10_000_000);
        assert!(small < mid && mid < large);
        // "somewhat lower for smaller networks": ~1k-person networks should
        // land in the tens.
        assert!((10.0..40.0).contains(&small), "got {small}");
    }

    #[test]
    fn percentile_curve_is_monotone_and_log_shaped() {
        let m = DegreeModel::facebook();
        let mut prev = 0.0;
        for p in 1..=PERCENTILES {
            let d = m.max_degree_at_percentile(p);
            assert!(d > prev);
            prev = d;
        }
        assert!(m.max_degree_at_percentile(1) < 15.0);
        assert!(m.max_degree_at_percentile(100) > 1_000.0);
    }

    #[test]
    fn realized_mean_matches_formula() {
        let m = DegreeModel::facebook();
        let n_persons = 10_000u64;
        let mut rng = Rng::for_entity(1, Stream::Degree, 0);
        let samples = 200_000;
        let sum: u64 = (0..samples).map(|_| m.target_degree(&mut rng, n_persons) as u64).sum();
        let mean = sum as f64 / samples as f64;
        let expect = DegreeModel::avg_degree_for(n_persons);
        let rel = (mean - expect).abs() / expect;
        assert!(rel < 0.05, "mean {mean} vs expected {expect}");
    }

    #[test]
    fn degrees_are_at_least_one() {
        let m = DegreeModel::facebook();
        let mut rng = Rng::for_entity(2, Stream::Degree, 0);
        for _ in 0..10_000 {
            assert!(m.target_degree(&mut rng, 50) >= 1);
        }
    }

    #[test]
    fn distribution_is_skewed() {
        // Power-law-ish: the max sampled degree should far exceed the mean.
        let m = DegreeModel::facebook();
        let mut rng = Rng::for_entity(3, Stream::Degree, 0);
        let n_persons = 10_000u64;
        let samples: Vec<u32> = (0..50_000).map(|_| m.target_degree(&mut rng, n_persons)).collect();
        let mean = samples.iter().map(|&d| d as f64).sum::<f64>() / samples.len() as f64;
        let max = *samples.iter().max().unwrap() as f64;
        assert!(max > 5.0 * mean, "max {max} mean {mean}");
    }
}
