//! # snb-core
//!
//! Shared foundation for the LDBC Social Network Benchmark (Interactive)
//! reproduction: entity schema, typed identifiers, simulation time,
//! deterministic random-number generation and the statistical distributions
//! the paper's data generator relies on (geometric window sampling, skewed
//! dictionary sampling, the Facebook-derived degree-percentile curve), plus
//! the embedded dictionaries that stand in for DBpedia.
//!
//! Everything downstream (`snb-datagen`, `snb-store`, `snb-queries`,
//! `snb-driver`, `snb-params`) builds on these types.

pub mod degree;
pub mod dict;
pub mod error;
pub mod id;
pub mod rng;
pub mod schema;
pub mod shard;
pub mod time;
pub mod update;

pub use error::{SnbError, SnbResult};
pub use id::*;
pub use time::SimTime;
