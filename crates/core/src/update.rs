//! Transactional update operations (§4, "Transactional update queries").
//!
//! "Since the structure of the SNB dataset is complex, the driver cannot
//! generate new data on-the-fly, rather it is pre-generated": DATAGEN splits
//! its output at one timestamp; everything later becomes the update stream,
//! replayed by the driver as the eight DML operation types U1–U8.
//!
//! Each scheduled operation carries a *due time* (`T_DUE`, the simulation
//! time it is scheduled at) and a *dependency time* (`T_DEP`, the creation
//! time of the latest operation it depends on); the driver guarantees
//! `T_DEP ≤ GCT` before executing a dependent operation (§4.2).

use crate::schema::{Comment, Forum, ForumMembership, Knows, Like, Person, Post};
use crate::time::SimTime;

/// One of the eight SNB-Interactive update (DML) operations.
#[derive(Debug, Clone)]
pub enum UpdateOp {
    /// U1: add a person account (a *Dependencies* operation — others wait
    /// on it).
    AddPerson(Person),
    /// U2: add a like to a post.
    AddPostLike(Like),
    /// U3: add a like to a comment.
    AddCommentLike(Like),
    /// U4: add a forum (also a *Dependencies* operation for memberships).
    AddForum(Forum),
    /// U5: add a forum membership.
    AddMembership(ForumMembership),
    /// U6: add a post.
    AddPost(Post),
    /// U7: add a comment.
    AddComment(Comment),
    /// U8: add a friendship edge.
    AddFriendship(Knows),
}

impl UpdateOp {
    /// 1-based update-query number (U1..U8) as reported in the paper's
    /// Table 9.
    pub fn query_number(&self) -> usize {
        match self {
            UpdateOp::AddPerson(_) => 1,
            UpdateOp::AddPostLike(_) => 2,
            UpdateOp::AddCommentLike(_) => 3,
            UpdateOp::AddForum(_) => 4,
            UpdateOp::AddMembership(_) => 5,
            UpdateOp::AddPost(_) => 6,
            UpdateOp::AddComment(_) => 7,
            UpdateOp::AddFriendship(_) => 8,
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            UpdateOp::AddPerson(_) => "addPerson",
            UpdateOp::AddPostLike(_) => "addPostLike",
            UpdateOp::AddCommentLike(_) => "addCommentLike",
            UpdateOp::AddForum(_) => "addForum",
            UpdateOp::AddMembership(_) => "addMembership",
            UpdateOp::AddPost(_) => "addPost",
            UpdateOp::AddComment(_) => "addComment",
            UpdateOp::AddFriendship(_) => "addFriendship",
        }
    }

    /// Creation timestamp of the entity being inserted; the operation's
    /// natural due time.
    pub fn creation_date(&self) -> SimTime {
        match self {
            UpdateOp::AddPerson(p) => p.creation_date,
            UpdateOp::AddPostLike(l) | UpdateOp::AddCommentLike(l) => l.creation_date,
            UpdateOp::AddForum(f) => f.creation_date,
            UpdateOp::AddMembership(m) => m.join_date,
            UpdateOp::AddPost(p) => p.creation_date,
            UpdateOp::AddComment(c) => c.creation_date,
            UpdateOp::AddFriendship(k) => k.creation_date,
        }
    }

    /// Whether this operation is in the *Dependencies* set: at least one
    /// later operation may wait for it (person and forum creations; §4.2
    /// tracks person-level dependencies with GCT and captures intra-forum
    /// ones by sequential per-forum execution).
    pub fn is_dependency(&self) -> bool {
        matches!(self, UpdateOp::AddPerson(_) | UpdateOp::AddForum(_))
    }
}

/// Which driver stream an operation belongs to (§4.2, "Stream Execution
/// Modes"): person-level operations touch the non-partitionable FRIEND
/// graph and are tracked with GCT; forum-level operations partition cleanly
/// by forum and run in Sequential mode, which captures intra-forum
/// (post → comment → like) dependencies by causal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamKey {
    /// Person stream: addPerson and addFriendship.
    Person,
    /// Per-forum stream: forum creation, membership, posts, comments, likes.
    Forum(u64),
}

/// An update operation scheduled on the simulation timeline.
#[derive(Debug, Clone)]
pub struct ScheduledUpdate {
    /// `T_DUE`: simulation time at which the driver should fire it.
    pub due: SimTime,
    /// `T_DEP`: creation time of the latest *Dependencies* operation this
    /// one must wait for (its person/forum prerequisites). `SimTime(0)` for
    /// operations with only bulk-loaded prerequisites.
    pub dep: SimTime,
    /// Stream/partition this operation belongs to. The generator resolves
    /// it (likes and comments need a message → forum lookup the driver
    /// cannot do on its own).
    pub stream: StreamKey,
    /// The operation itself.
    pub op: UpdateOp,
}

impl ScheduledUpdate {
    /// True if this operation belongs to the *Dependents* set (it must wait
    /// for `dep` via GCT).
    pub fn is_dependent(&self) -> bool {
        self.dep.millis() > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{MessageId, PersonId};

    fn like() -> Like {
        Like {
            person: PersonId(1),
            message: MessageId(2),
            creation_date: SimTime::from_ymd(2012, 10, 1),
        }
    }

    #[test]
    fn query_numbers_match_paper_tables() {
        assert_eq!(UpdateOp::AddPostLike(like()).query_number(), 2);
        assert_eq!(UpdateOp::AddCommentLike(like()).query_number(), 3);
        let k = Knows { a: PersonId(1), b: PersonId(2), creation_date: SimTime(9) };
        assert_eq!(UpdateOp::AddFriendship(k).query_number(), 8);
    }

    #[test]
    fn dependency_classification() {
        let k = Knows { a: PersonId(1), b: PersonId(2), creation_date: SimTime(9) };
        assert!(!UpdateOp::AddFriendship(k).is_dependency());
        let s = ScheduledUpdate {
            due: SimTime(10),
            dep: SimTime(5),
            stream: StreamKey::Forum(3),
            op: UpdateOp::AddPostLike(like()),
        };
        assert!(s.is_dependent());
        let s0 = ScheduledUpdate {
            due: SimTime(10),
            dep: SimTime(0),
            stream: StreamKey::Person,
            op: UpdateOp::AddPostLike(like()),
        };
        assert!(!s0.is_dependent());
    }

    #[test]
    fn creation_date_extraction() {
        assert_eq!(UpdateOp::AddPostLike(like()).creation_date(), SimTime::from_ymd(2012, 10, 1));
    }
}
