//! Horizontal partitioning of the id spaces across N shard processes.
//!
//! The paper's driver is built to drive a distributed SUT: update streams
//! are partitioned and the GCT exists precisely so dependent updates stay
//! ordered across partitions (§4.2). [`ShardMap`] is the pure routing
//! function both sides share — the driver's `ShardedConnector` computes it
//! to route operations, and every `snb serve --shard i/N` process computes
//! the identical map to bulk-load only its slice. There is no lookup table
//! to distribute and nothing to resize: ownership is a function of the id.
//!
//! Ids are assigned densely in creation order (bulk entities first, then
//! update-era entities past the bulk ceiling), so plain modulo would work —
//! but contiguous *ranges* keep a shard's slice of each `SegVec`-backed
//! table dense and give range scans locality. [`ShardMap`] therefore uses
//! block-cyclic ranges: contiguous blocks of [`BLOCK`] ids assigned
//! round-robin, which spreads both the bulk id range and the update-era
//! tail evenly without coordination.
//!
//! What partitions and what replicates is a property of the workload, not
//! of this map (see DESIGN.md "Sharding"): persons and the friendship
//! graph are replicated (every complex read traverses them; they are a
//! small fraction of storage per the paper's Table 3), while forums and
//! their activity trees — memberships, posts, comments, likes — partition
//! by **forum** id range. A forum's discussion trees are causally
//! self-contained ([`crate::update::StreamKey`] relies on the same fact),
//! so every foreign key of a partitioned row lands on its own shard.

use crate::{ForumId, PersonId};

/// Ids per block: contiguous runs of this many ids share a shard.
pub const BLOCK: u64 = 64;

/// The pure id → shard routing function, identical in every process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: u32,
}

impl ShardMap {
    /// A map over `shards` shards (at least 1).
    pub fn new(shards: u32) -> ShardMap {
        ShardMap { shards: shards.max(1) }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Shard owning a raw id in any dense id space.
    pub fn shard_of(&self, id: u64) -> u32 {
        ((id / BLOCK) % self.shards as u64) as u32
    }

    /// Shard a person-anchored point op routes to. Person rows are
    /// replicated, so any shard *could* answer — routing by id range
    /// spreads the load deterministically.
    pub fn shard_of_person(&self, id: PersonId) -> u32 {
        self.shard_of(id.raw())
    }

    /// Shard owning a forum and its entire activity tree.
    pub fn shard_of_forum(&self, id: ForumId) -> u32 {
        self.shard_of(id.raw())
    }

    /// Whether `shard` owns this forum's activity tree.
    pub fn owns_forum(&self, id: ForumId, shard: u32) -> bool {
        self.shard_of(id.raw()) == shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_owns_everything() {
        let map = ShardMap::new(1);
        for id in [0, 1, 63, 64, 1_000_000] {
            assert_eq!(map.shard_of(id), 0);
        }
    }

    #[test]
    fn blocks_are_contiguous_and_cyclic() {
        let map = ShardMap::new(4);
        // Whole blocks map to one shard.
        for id in 0..BLOCK {
            assert_eq!(map.shard_of(id), 0);
            assert_eq!(map.shard_of(BLOCK + id), 1);
            assert_eq!(map.shard_of(2 * BLOCK + id), 2);
            assert_eq!(map.shard_of(3 * BLOCK + id), 3);
            assert_eq!(map.shard_of(4 * BLOCK + id), 0, "cycle wraps");
        }
    }

    #[test]
    fn dense_ids_balance_within_one_block() {
        let map = ShardMap::new(3);
        let n = 10_000u64;
        let mut counts = [0u64; 3];
        for id in 0..n {
            counts[map.shard_of(id) as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= BLOCK, "{counts:?}");
    }

    #[test]
    fn every_id_has_exactly_one_owner() {
        let map = ShardMap::new(5);
        for id in 0..1000 {
            let owner = map.shard_of_forum(ForumId(id));
            let owners = (0..5).filter(|&s| map.owns_forum(ForumId(id), s)).collect::<Vec<_>>();
            assert_eq!(owners, vec![owner]);
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        assert_eq!(ShardMap::new(0).shards(), 1);
    }
}
