//! Typed entity identifiers.
//!
//! Every entity in the SNB schema is addressed by a dense `u64` identifier.
//! The newtypes below prevent the classic benchmark-implementation bug of
//! handing a `PersonId` to an API expecting a `ForumId`. Message identifiers
//! are assigned in creation-time order by the generator, which the paper
//! calls out (§3) as enabling high-locality date-range scans.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// Raw numeric value of the identifier.
            #[inline]
            pub fn raw(self) -> u64 {
                self.0
            }

            /// Index form for dense per-entity arrays.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            #[inline]
            fn from(v: u64) -> Self {
                Self(v)
            }
        }

        impl From<$name> for u64 {
            #[inline]
            fn from(v: $name) -> u64 {
                v.0
            }
        }
    };
}

define_id!(
    /// Identifier of a [`crate::schema::Person`].
    PersonId,
    "person:"
);
define_id!(
    /// Identifier of a [`crate::schema::Forum`].
    ForumId,
    "forum:"
);
define_id!(
    /// Identifier of a message (either a post or a comment).
    ///
    /// Posts and comments share one id space, mirroring the LDBC schema where
    /// `Message` is the supertype; ids increase with creation time.
    MessageId,
    "message:"
);
define_id!(
    /// Identifier of a `Tag` (dictionary entity).
    TagId,
    "tag:"
);
define_id!(
    /// Identifier of a `TagClass` (dictionary entity).
    TagClassId,
    "tagclass:"
);
define_id!(
    /// Identifier of a `Place` dictionary entity (country or city).
    PlaceId,
    "place:"
);
define_id!(
    /// Identifier of a `Organisation` dictionary entity (university or company).
    OrganisationId,
    "org:"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(PersonId(42).to_string(), "person:42");
        assert_eq!(ForumId(7).to_string(), "forum:7");
        assert_eq!(MessageId(0).to_string(), "message:0");
    }

    #[test]
    fn ids_roundtrip_u64() {
        let p: PersonId = 99u64.into();
        assert_eq!(u64::from(p), 99);
        assert_eq!(p.raw(), 99);
        assert_eq!(p.index(), 99);
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(TagId(1));
        set.insert(TagId(1));
        set.insert(TagId(2));
        assert_eq!(set.len(), 2);
        assert!(MessageId(3) < MessageId(10));
    }
}
