//! Greedy parameter selection (§4.1, "Step 2: Greedy parameter selection").
//!
//! "Once the intermediate results for the query template are computed, our
//! Parameter Curation problem boils down to finding similar rows (i.e.,
//! with the smallest variance across all columns) in the Parameter-Count
//! table. [...] we first identify the windows of rows in the column |⋈1|
//! with the minimum variance [...] Then, in this window we find the
//! sub-window with the smallest variance in the second column |⋈2|."

use crate::pc_table::PcTable;

/// Select `k` parameter values (person ids) from `pc` whose intermediate
/// result counts have minimal variance across all columns, via the paper's
/// greedy window refinement.
///
/// Candidates are first restricted to the inter-quantile band of the first
/// column (P40-P90): a raw minimum-variance window would land on the mass
/// of near-empty rows (persons with no friends have identical zero counts),
/// which satisfies the letter of the variance objective but not P1 — "the
/// average runtime should correspond to the behavior of the majority of
/// the queries". The band anchors the selection to typical workload sizes.
pub fn select(pc: &PcTable, k: usize) -> Vec<u64> {
    assert!(k > 0);
    if pc.rows.len() <= k {
        return pc.rows.iter().map(|&(p, _)| p).collect();
    }
    let n_cols = pc.columns.len();
    // Candidate index set, refined column by column.
    let mut candidates: Vec<usize> = (0..pc.rows.len()).collect();
    candidates.sort_by_key(|&i| (pc.rows[i].1[0], pc.rows[i].0));
    let lo = candidates.len() * 40 / 100;
    let hi = (candidates.len() * 90 / 100).max(lo + k).min(candidates.len());
    if hi - lo >= k {
        candidates = candidates[lo..hi].to_vec();
    }
    for col in 0..n_cols {
        // Window size shrinks toward k as we refine.
        let remaining_cols = n_cols - col - 1;
        let window = (k * (1 << remaining_cols)).min(candidates.len()).max(k);
        candidates.sort_by_key(|&i| (pc.rows[i].1[col], pc.rows[i].0));
        candidates = min_variance_window(&candidates, |i| pc.rows[i].1[col] as f64, window);
    }
    let mut out: Vec<u64> = candidates.into_iter().take(k).map(|i| pc.rows[i].0).collect();
    out.sort_unstable();
    out
}

/// Sliding window of `size` over `sorted` minimizing the variance of
/// `value`; returns the winning window's elements.
fn min_variance_window<F: Fn(usize) -> f64>(sorted: &[usize], value: F, size: usize) -> Vec<usize> {
    debug_assert!(size <= sorted.len());
    let vals: Vec<f64> = sorted.iter().map(|&i| value(i)).collect();
    // Prefix sums for O(1) window variance.
    let mut sum = vec![0.0f64; vals.len() + 1];
    let mut sum2 = vec![0.0f64; vals.len() + 1];
    for (i, &v) in vals.iter().enumerate() {
        sum[i + 1] = sum[i] + v;
        sum2[i + 1] = sum2[i] + v * v;
    }
    let mut best_start = 0;
    let mut best_var = f64::INFINITY;
    for start in 0..=vals.len() - size {
        let end = start + size;
        let m = (sum[end] - sum[start]) / size as f64;
        let var = (sum2[end] - sum2[start]) / size as f64 - m * m;
        if var < best_var {
            best_var = var;
            best_start = start;
        }
    }
    sorted[best_start..best_start + size].to_vec()
}

/// Sample variance of the per-column counts over the selected rows;
/// the quantity the curation minimizes, exposed for experiments and tests.
pub fn selection_variance(pc: &PcTable, selected: &[u64]) -> f64 {
    let index: std::collections::HashMap<u64, &Vec<u64>> =
        pc.rows.iter().map(|(p, c)| (*p, c)).collect();
    let mut total = 0.0;
    for col in 0..pc.columns.len() {
        let vals: Vec<f64> =
            selected.iter().filter_map(|p| index.get(p).map(|c| c[col] as f64)).collect();
        if vals.is_empty() {
            continue;
        }
        let m = vals.iter().sum::<f64>() / vals.len() as f64;
        total += vals.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / vals.len() as f64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_core::rng::{Rng, Stream};

    fn synthetic_pc(n: usize, seed: u64) -> PcTable {
        // Power-law-ish two-column table, mimicking friends / messages.
        let mut rng = Rng::for_entity(seed, Stream::Misc, 0);
        let rows = (0..n as u64)
            .map(|p| {
                let friends = (10.0 / rng.next_f64().max(1e-3)) as u64 % 500;
                let messages = friends * (3 + rng.below(5));
                (p, vec![friends, messages])
            })
            .collect();
        PcTable { columns: vec!["friends", "messages"], rows }
    }

    #[test]
    fn selection_returns_k_distinct_values() {
        let pc = synthetic_pc(2_000, 1);
        let sel = select(&pc, 25);
        assert_eq!(sel.len(), 25);
        let mut dedup = sel.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 25);
    }

    #[test]
    fn curated_variance_beats_uniform_sampling() {
        let pc = synthetic_pc(5_000, 2);
        let k = 30;
        let curated = select(&pc, k);
        let curated_var = selection_variance(&pc, &curated);
        // Average uniform-sample variance over several draws.
        let mut rng = Rng::for_entity(3, Stream::Misc, 1);
        let mut uniform_var = 0.0;
        let draws = 20;
        for _ in 0..draws {
            let sample: Vec<u64> = (0..k).map(|_| rng.below(pc.len() as u64)).collect();
            uniform_var += selection_variance(&pc, &sample);
        }
        uniform_var /= draws as f64;
        assert!(
            curated_var < uniform_var / 10.0,
            "curated {curated_var:.1} vs uniform {uniform_var:.1}"
        );
    }

    #[test]
    fn small_tables_return_everything() {
        let pc = synthetic_pc(5, 4);
        assert_eq!(select(&pc, 10).len(), 5);
    }

    #[test]
    fn identical_rows_have_zero_variance() {
        let rows = (0..100u64).map(|p| (p, vec![42, 7])).collect();
        let pc = PcTable { columns: vec!["a", "b"], rows };
        let sel = select(&pc, 10);
        assert_eq!(selection_variance(&pc, &sel), 0.0);
    }
}
