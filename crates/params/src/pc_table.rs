//! Parameter-Count tables (§4.1, Fig. 6b).
//!
//! "The goal of this stage is to compute all the intermediate results in
//! the query plan for each value of the parameter. We store this
//! information as a Parameter-Count (PC) table, where rows correspond to
//! parameter values, and columns to specific join result sizes."
//!
//! We use the paper's strategy (ii): "since we are generating the data
//! anyway, we can keep the corresponding counts (number of friends per
//! user and number of posts per user) as a by-product of data generation" —
//! the counts are derived from the in-memory [`snb_datagen::Dataset`]
//! without executing any query.

use snb_datagen::Dataset;

/// A Parameter-Count table: one row per candidate parameter value (person),
/// one column per intermediate-result cardinality in the intended plan.
#[derive(Debug, Clone)]
pub struct PcTable {
    /// Column labels, e.g. `["|⋈1| friends", "|⋈2| friend posts"]`.
    pub columns: Vec<&'static str>,
    /// `(person id, per-column counts)`.
    pub rows: Vec<(u64, Vec<u64>)>,
}

impl PcTable {
    /// Number of candidate rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Per-person base statistics shared by all PC tables.
#[derive(Debug)]
pub struct PersonStats {
    /// Friend count per person.
    pub friends: Vec<u64>,
    /// Friends-of-friends count (distinct, excluding self and friends).
    pub friends_of_friends: Vec<u64>,
    /// Message count per person.
    pub messages: Vec<u64>,
    /// Sum of friends' message counts per person.
    pub friend_messages: Vec<u64>,
    /// Sum of the 2-hop circle's message counts per person.
    pub two_hop_messages: Vec<u64>,
}

/// Compute the base statistics in one pass over the dataset.
pub fn person_stats(ds: &Dataset) -> PersonStats {
    let n = ds.persons.len();
    let adj = snb_datagen::activity::build_adjacency(n, &ds.knows);
    let mut messages = vec![0u64; n];
    for p in &ds.posts {
        messages[p.author.index()] += 1;
    }
    for c in &ds.comments {
        messages[c.author.index()] += 1;
    }

    let friends: Vec<u64> = adj.iter().map(|l| l.len() as u64).collect();
    let mut friends_of_friends = vec![0u64; n];
    let mut friend_messages = vec![0u64; n];
    let mut two_hop_messages = vec![0u64; n];
    let mut seen = vec![u32::MAX; n];
    for p in 0..n {
        let mut fof = 0u64;
        let mut fmsg = 0u64;
        let mut hmsg = 0u64;
        seen[p] = p as u32;
        for &(f, _) in &adj[p] {
            seen[f as usize] = p as u32;
        }
        for &(f, _) in &adj[p] {
            fmsg += messages[f as usize];
            hmsg += messages[f as usize];
            for &(ff, _) in &adj[f as usize] {
                if seen[ff as usize] != p as u32 {
                    seen[ff as usize] = p as u32;
                    fof += 1;
                    hmsg += messages[ff as usize];
                }
            }
        }
        friends_of_friends[p] = fof;
        friend_messages[p] = fmsg;
        two_hop_messages[p] = hmsg;
    }
    PersonStats { friends, friends_of_friends, messages, friend_messages, two_hop_messages }
}

/// PC table for the one-hop message queries (Q2's intended plan, Fig. 6a):
/// columns |⋈1| = friends, |⋈2| = friends' messages.
pub fn pc_one_hop(stats: &PersonStats) -> PcTable {
    PcTable {
        columns: vec!["friends", "friend_messages"],
        rows: (0..stats.friends.len() as u64)
            .map(|p| (p, vec![stats.friends[p as usize], stats.friend_messages[p as usize]]))
            .collect(),
    }
}

/// PC table for the two-hop queries (Q5/Q9 intended plans): columns
/// |⋈1| = friends, |⋈2| = friends-of-friends, |⋈3| = 2-hop messages.
pub fn pc_two_hop(stats: &PersonStats) -> PcTable {
    PcTable {
        columns: vec!["friends", "friends_of_friends", "two_hop_messages"],
        rows: (0..stats.friends.len() as u64)
            .map(|p| {
                let i = p as usize;
                (p, vec![stats.friends[i], stats.friends_of_friends[i], stats.two_hop_messages[i]])
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_datagen::{generate, GeneratorConfig};

    fn dataset() -> Dataset {
        generate(GeneratorConfig::with_persons(300).activity(0.4)).unwrap()
    }

    #[test]
    fn stats_match_brute_force_on_sample() {
        let ds = dataset();
        let stats = person_stats(&ds);
        // Brute-force check for a handful of persons.
        let adj = snb_datagen::activity::build_adjacency(ds.persons.len(), &ds.knows);
        for p in [0usize, 7, 100, 250] {
            let friends: std::collections::HashSet<u32> = adj[p].iter().map(|&(f, _)| f).collect();
            assert_eq!(stats.friends[p], friends.len() as u64);
            let mut fof = std::collections::HashSet::new();
            for &f in &friends {
                for &(ff, _) in &adj[f as usize] {
                    if ff as usize != p && !friends.contains(&ff) {
                        fof.insert(ff);
                    }
                }
            }
            assert_eq!(stats.friends_of_friends[p], fof.len() as u64, "person {p}");
            let msg_count = ds.posts.iter().filter(|m| m.author.index() == p).count()
                + ds.comments.iter().filter(|c| c.author.index() == p).count();
            assert_eq!(stats.messages[p], msg_count as u64);
        }
    }

    #[test]
    fn pc_tables_cover_all_persons() {
        let ds = dataset();
        let stats = person_stats(&ds);
        let t1 = pc_one_hop(&stats);
        let t2 = pc_two_hop(&stats);
        assert_eq!(t1.len(), ds.persons.len());
        assert_eq!(t2.len(), ds.persons.len());
        assert_eq!(t1.columns.len(), 2);
        assert_eq!(t2.columns.len(), 3);
        for (_, counts) in &t2.rows {
            assert_eq!(counts.len(), 3);
        }
    }

    #[test]
    fn two_hop_distribution_is_multimodal_wide() {
        // Fig. 5a: the 2-hop environment size varies enormously; the max
        // should dwarf the median.
        let ds = dataset();
        let stats = person_stats(&ds);
        let mut sizes: Vec<u64> =
            stats.friends_of_friends.iter().zip(&stats.friends).map(|(a, b)| a + b).collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2];
        let max = *sizes.last().unwrap();
        assert!(max > 2 * median.max(1), "max {max} median {median}");
    }
}
