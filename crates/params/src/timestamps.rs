//! Multi-parameter curation: person × timestamp (§4.1, "Parameter Curation
//! for multiple parameters").
//!
//! "While it is feasible for discrete parameters with reasonably small
//! domains (like PersonID ...), it becomes too expensive for continuous
//! parameters. In that case, we introduce buckets of parameters (for
//! example, group Timestamp parameter into buckets of one month length)."
//!
//! For templates like Q2 `(person, maxDate)` the intermediate-result count
//! depends on both bindings: the number of friend messages *up to the
//! date*. We materialize the per-(person, month-bucket) cumulative counts
//! and run the same greedy minimum-variance selection over the joint rows,
//! returning `(person, timestamp)` pairs whose plans process near-identical
//! volumes.

use crate::curation;
use crate::pc_table::PcTable;
use snb_core::time::SimTime;
use snb_core::PersonId;
use snb_datagen::Dataset;

/// Number of month buckets in the three-year simulation.
const MONTH_BUCKETS: i64 = 36;

/// A curated `(person, timestamp)` binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersonDate {
    /// The person parameter.
    pub person: PersonId,
    /// The timestamp parameter (end of the selected month bucket).
    pub max_date: SimTime,
}

/// Cumulative friend-message counts per (person, month bucket): the joint
/// Parameter-Count table for Q2/Q9-style templates.
pub fn pc_person_month(ds: &Dataset) -> PcTable {
    let n = ds.persons.len();
    let adj = snb_datagen::activity::build_adjacency(n, &ds.knows);
    // messages[person][bucket] = messages authored in that month.
    let mut monthly = vec![[0u32; MONTH_BUCKETS as usize]; n];
    let buckets = |d: SimTime| d.month_bucket().clamp(0, MONTH_BUCKETS - 1) as usize;
    for p in &ds.posts {
        monthly[p.author.index()][buckets(p.creation_date)] += 1;
    }
    for c in &ds.comments {
        monthly[c.author.index()][buckets(c.creation_date)] += 1;
    }
    // Rows: (person << 8 | bucket) -> [friends, cumulative friend messages].
    let mut rows = Vec::with_capacity(n * 4);
    for (person, friends) in adj.iter().enumerate() {
        let mut cumulative = 0u64;
        #[allow(clippy::needless_range_loop)] // bucket also keys the friend lookups
        for bucket in 0..MONTH_BUCKETS as usize {
            for &(f, _) in friends {
                cumulative += monthly[f as usize][bucket] as u64;
            }
            // Sample a few representative buckets to keep the table small
            // (the paper buckets precisely to bound this cost).
            if bucket % 6 == 5 {
                rows.push((
                    ((person as u64) << 8) | bucket as u64,
                    vec![friends.len() as u64, cumulative],
                ));
            }
        }
    }
    PcTable { columns: vec!["friends", "cumulative_friend_messages"], rows }
}

/// Select `k` joint `(person, maxDate)` bindings by greedy minimum-variance
/// windows over the joint table.
pub fn curated_person_dates(ds: &Dataset, k: usize) -> Vec<PersonDate> {
    let pc = pc_person_month(ds);
    curation::select(&pc, k)
        .into_iter()
        .map(|key| {
            let person = PersonId(key >> 8);
            let bucket = (key & 0xFF) as i64;
            // End of the bucket's month: start + bucket+1 months (approx by
            // 30-day months is enough for a parameter value).
            let max_date = SimTime::SIM_START.plus_days((bucket + 1) * 30);
            PersonDate { person, max_date }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_datagen::{generate, GeneratorConfig};
    use std::sync::OnceLock;

    fn dataset() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| generate(GeneratorConfig::with_persons(300).activity(0.4)).unwrap())
    }

    #[test]
    fn joint_table_counts_are_cumulative() {
        let ds = dataset();
        let pc = pc_person_month(ds);
        assert!(!pc.is_empty());
        // Within one person, later buckets never have smaller counts.
        let mut last: Option<(u64, u64)> = None;
        for (key, counts) in &pc.rows {
            let person = key >> 8;
            if let Some((lp, lc)) = last {
                if lp == person {
                    assert!(counts[1] >= lc, "cumulative count decreased");
                }
            }
            last = Some((person, counts[1]));
        }
    }

    #[test]
    fn joint_selection_returns_k_similar_bindings() {
        let ds = dataset();
        let k = 12;
        let bindings = curated_person_dates(ds, k);
        assert_eq!(bindings.len(), k);
        for b in &bindings {
            assert!(b.person.index() < ds.persons.len());
            assert!(b.max_date > SimTime::SIM_START);
            assert!(b.max_date <= SimTime::SIM_END.plus_days(31));
        }
        // Joint counts of selected rows have lower variance than a uniform
        // pick of rows.
        let pc = pc_person_month(ds);
        let selected: Vec<u64> = bindings
            .iter()
            .map(|b| {
                let bucket = (b.max_date.since(SimTime::SIM_START)
                    / (30 * snb_core::time::MILLIS_PER_DAY))
                    - 1;
                ((b.person.raw()) << 8) | bucket as u64
            })
            .collect();
        let curated_var = curation::selection_variance(&pc, &selected);
        // Baseline: the whole population's variance. (A naive evenly-spaced
        // baseline would mostly sample the degenerate zero-friend rows,
        // whose counts are trivially identical — exactly the distributional
        // trap the banded selection avoids.)
        let all: Vec<u64> = pc.rows.iter().map(|r| r.0).collect();
        let population_var = curation::selection_variance(&pc, &all);
        assert!(
            curated_var < population_var / 10.0,
            "joint curation did not reduce variance: {curated_var} vs population {population_var}"
        );
    }

    #[test]
    fn bindings_are_deterministic() {
        let ds = dataset();
        assert_eq!(curated_person_dates(ds, 8), curated_person_dates(ds, 8));
    }
}
