//! # snb-params
//!
//! Parameter curation (§4.1): selecting substitution parameters for the
//! query templates such that (P1) runtimes have bounded variance, (P2) the
//! runtime distribution is stable across streams, and (P3) the intended
//! plan stays optimal. A data-mining step over generation-time statistics
//! builds Parameter-Count tables ([`pc_table`]) and a greedy
//! minimum-variance window selection picks the bindings ([`curation`]).
//! Uniform sampling is provided as the baseline the paper's Fig. 5 argues
//! against.

pub mod curation;
pub mod pc_table;
pub mod timestamps;

use snb_core::rng::{Rng, Stream};
use snb_core::time::SimTime;
use snb_core::PersonId;
use snb_datagen::Dataset;
use snb_queries::params::*;
use snb_queries::ComplexQuery;

/// A full set of parameter bindings: `k` instances of each of the 14
/// complex query templates.
#[derive(Debug)]
pub struct Bindings {
    per_query: Vec<Vec<ComplexQuery>>,
}

impl Bindings {
    /// Binding `i` (mod k) of query `q` (1-based).
    pub fn get(&self, q: usize, i: usize) -> &ComplexQuery {
        let list = &self.per_query[q - 1];
        &list[i % list.len()]
    }

    /// All bindings of query `q` (1-based).
    pub fn all(&self, q: usize) -> &[ComplexQuery] {
        &self.per_query[q - 1]
    }

    /// Number of bindings per template.
    pub fn k(&self) -> usize {
        self.per_query[0].len()
    }
}

/// Keep only persons that exist in a bulk-loaded store: parameters must
/// reference bulk entities, not ones that arrive later via the update
/// stream.
fn retain_bulk(ds: &Dataset, pc: &mut pc_table::PcTable) {
    pc.rows.retain(|&(p, _)| ds.persons[p as usize].creation_date <= ds.config.update_split);
}

/// Curated bindings: persons picked by minimum-variance window selection on
/// the PC table matching each template's intended plan.
pub fn curated_bindings(ds: &Dataset, k: usize) -> Bindings {
    let stats = pc_table::person_stats(ds);
    let mut one = pc_table::pc_one_hop(&stats);
    let mut two = pc_table::pc_two_hop(&stats);
    retain_bulk(ds, &mut one);
    retain_bulk(ds, &mut two);
    let one_hop = curation::select(&one, k);
    let two_hop = curation::select(&two, k);
    build(ds, k, &one_hop, &two_hop)
}

/// Uniform random bindings (the baseline of Fig. 5b): persons sampled
/// uniformly from the bulk-loaded population.
pub fn uniform_bindings(ds: &Dataset, k: usize, seed: u64) -> Bindings {
    let mut rng = Rng::for_entity(seed, Stream::Workload, 0);
    let bulk: Vec<u64> = ds
        .persons
        .iter()
        .filter(|p| p.creation_date <= ds.config.update_split)
        .map(|p| p.id.raw())
        .collect();
    let sample: Vec<u64> = (0..k).map(|_| bulk[rng.index(bulk.len())]).collect();
    build(ds, k, &sample, &sample)
}

fn most_common_first_name(ds: &Dataset) -> String {
    let mut counts = std::collections::HashMap::new();
    for p in &ds.persons {
        *counts.entry(p.first_name).or_insert(0usize) += 1;
    }
    counts.into_iter().max_by_key(|&(_, c)| c).map(|(n, _)| n.to_string()).unwrap_or_default()
}

fn most_common_countries(ds: &Dataset) -> Vec<usize> {
    let mut counts = std::collections::HashMap::new();
    for p in &ds.persons {
        *counts.entry(p.country).or_insert(0usize) += 1;
    }
    let mut v: Vec<(usize, usize)> = counts.into_iter().collect();
    v.sort_by_key(|&(c, n)| (std::cmp::Reverse(n), c));
    v.into_iter().map(|(c, _)| c).collect()
}

fn build(ds: &Dataset, k: usize, one_hop: &[u64], two_hop: &[u64]) -> Bindings {
    let name = most_common_first_name(ds);
    let countries = most_common_countries(ds);
    let mid = SimTime::from_ymd(2011, 9, 1);
    let late = SimTime::from_ymd(2012, 3, 1);
    let split = ds.config.update_split;
    let dicts = snb_core::dict::Dictionaries::global();
    let n_classes = dicts.tags.class_count();

    let p1 = |i: usize| PersonId(one_hop[i % one_hop.len()]);
    let p2 = |i: usize| PersonId(two_hop[i % two_hop.len()]);
    // Q13/Q14 pair endpoints: walk the two-hop-curated set from both ends,
    // skipping identical pairs.
    let pair = |i: usize| {
        let x = PersonId(two_hop[i % two_hop.len()]);
        let mut y = PersonId(two_hop[(two_hop.len() - 1 - i % two_hop.len()) % two_hop.len()]);
        if x == y {
            y = PersonId(two_hop[(i + 1) % two_hop.len()]);
        }
        (x, y)
    };
    // Foreign-country picks for Q3: the two most populous countries that
    // are not the candidate's home.
    let q3_countries = |home: usize| {
        let mut it = countries.iter().filter(|&&c| c != home);
        let x = *it.next().unwrap_or(&0);
        let y = *it.next().unwrap_or(&1);
        (x, y)
    };

    let per_query = (1..=14)
        .map(|q| {
            (0..k)
                .map(|i| match q {
                    1 => ComplexQuery::Q1(Q1Params { person: p1(i), first_name: name.clone() }),
                    2 => ComplexQuery::Q2(Q2Params { person: p1(i), max_date: split }),
                    3 => {
                        let person = p2(i);
                        let home = ds.persons[person.index()].country;
                        let (country_x, country_y) = q3_countries(home);
                        ComplexQuery::Q3(Q3Params {
                            person,
                            country_x,
                            country_y,
                            start: mid,
                            duration_days: 180,
                        })
                    }
                    4 => {
                        ComplexQuery::Q4(Q4Params { person: p1(i), start: late, duration_days: 45 })
                    }
                    5 => ComplexQuery::Q5(Q5Params { person: p2(i), min_date: mid }),
                    6 => {
                        let person = p2(i);
                        let tag = ds.persons[person.index()]
                            .interests
                            .first()
                            .map(|t| t.index())
                            .unwrap_or(0);
                        ComplexQuery::Q6(Q6Params { person, tag })
                    }
                    7 => ComplexQuery::Q7(Q7Params { person: p1(i) }),
                    8 => ComplexQuery::Q8(Q8Params { person: p1(i) }),
                    9 => ComplexQuery::Q9(Q9Params { person: p2(i), max_date: split }),
                    10 => ComplexQuery::Q10(Q10Params { person: p2(i), month: (i % 12 + 1) as u8 }),
                    11 => {
                        let person = p2(i);
                        ComplexQuery::Q11(Q11Params {
                            person,
                            country: ds.persons[person.index()].country,
                            max_year: 2012,
                        })
                    }
                    12 => ComplexQuery::Q12(Q12Params {
                        person: p1(i),
                        // Skip the root class 0 (Thing) — too unselective.
                        tag_class: 1 + i % (n_classes - 1),
                    }),
                    13 => {
                        let (person_x, person_y) = pair(i);
                        ComplexQuery::Q13(Q13Params { person_x, person_y })
                    }
                    _ => {
                        let (person_x, person_y) = pair(i);
                        ComplexQuery::Q14(Q14Params { person_x, person_y })
                    }
                })
                .collect()
        })
        .collect();
    Bindings { per_query }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_datagen::{generate, GeneratorConfig};
    use std::sync::OnceLock;

    fn dataset() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| generate(GeneratorConfig::with_persons(400).activity(0.4)).unwrap())
    }

    #[test]
    fn bindings_cover_all_templates() {
        let ds = dataset();
        let b = curated_bindings(ds, 8);
        assert_eq!(b.k(), 8);
        for q in 1..=14 {
            assert_eq!(b.all(q).len(), 8);
            assert_eq!(b.get(q, 3).number(), q);
        }
    }

    #[test]
    fn uniform_bindings_are_seed_deterministic() {
        let ds = dataset();
        let a = uniform_bindings(ds, 5, 42);
        let b = uniform_bindings(ds, 5, 42);
        for q in 1..=14 {
            for i in 0..5 {
                assert_eq!(format!("{:?}", a.get(q, i)), format!("{:?}", b.get(q, i)));
            }
        }
    }

    #[test]
    fn q3_countries_exclude_home() {
        let ds = dataset();
        let b = curated_bindings(ds, 10);
        for q in b.all(3) {
            if let ComplexQuery::Q3(p) = q {
                let home = ds.persons[p.person.index()].country;
                assert_ne!(home, p.country_x);
                assert_ne!(home, p.country_y);
                assert_ne!(p.country_x, p.country_y);
            }
        }
    }

    #[test]
    fn path_query_endpoints_differ() {
        let ds = dataset();
        let b = curated_bindings(ds, 10);
        for q in b.all(13).iter().chain(b.all(14)) {
            match q {
                ComplexQuery::Q13(p) => assert_ne!(p.person_x, p.person_y),
                ComplexQuery::Q14(p) => assert_ne!(p.person_x, p.person_y),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn curated_persons_have_similar_two_hop_sizes() {
        let ds = dataset();
        let stats = pc_table::person_stats(ds);
        let pc = pc_table::pc_two_hop(&stats);
        let curated = curation::select(&pc, 10);
        let curated_var = curation::selection_variance(&pc, &curated);
        let mut uniform_var = 0.0;
        for seed in 0..10u64 {
            let b = uniform_bindings(ds, 10, seed);
            let sample: Vec<u64> = b
                .all(9)
                .iter()
                .map(|q| match q {
                    ComplexQuery::Q9(p) => p.person.raw(),
                    _ => unreachable!(),
                })
                .collect();
            uniform_var += curation::selection_variance(&pc, &sample);
        }
        uniform_var /= 10.0;
        assert!(curated_var < uniform_var, "curated {curated_var:.1} vs uniform {uniform_var:.1}");
    }
}
