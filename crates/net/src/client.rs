//! [`RemoteConnector`] — the driver side of the wire — and
//! [`PipelinedClient`], a single-connection v3 client that keeps several
//! requests in flight.
//!
//! `RemoteConnector` implements [`Connector`] over TCP with a connection
//! pool sized by demand: each concurrent `execute` checks a connection
//! out, so a driver with P partitions settles on at most P connections. It
//! speaks protocol v3 (every request carries a correlation id, verified on
//! the response) but keeps one request outstanding per checked-out
//! connection — the driver's dependency-execution loop is synchronous per
//! partition. Connect failures are retried with bounded exponential
//! backoff; a request that has been *sent* is NEVER retried — updates are
//! not idempotent, and a timed-out update may well have executed. The
//! error surfaces to the driver, which aborts the run (the benchmark's
//! required behavior on SUT failure).
//!
//! `PipelinedClient` is the load-generation primitive: `send` queues a
//! request and returns its correlation id without waiting; `recv` returns
//! the next completed `(correlation id, response)` in whatever order the
//! server finished them. The concurrent-load sweep drives hundreds of
//! these at once.

use crate::codec::{self, Request, Response, NET_MAGIC_V3};
use crate::metrics::NetMetrics;
use snb_core::{MessageId, SimTime, SnbError, SnbResult};
use snb_driver::connector::{Connector, OpOutcome, Operation, PartialOutcome};
use snb_obs::trace::{self, NameId, SpanData, SpanGuard};
use snb_obs::HistogramSnapshot;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Client-side timeouts and retry policy.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Per-address TCP connect timeout.
    pub connect_timeout: Duration,
    /// Read/write timeout for one request round trip.
    pub request_timeout: Duration,
    /// Additional dial attempts after a failed connect (0 = fail fast).
    pub connect_retries: u32,
    /// Base sleep before the first retry; the ceiling doubles per
    /// subsequent retry and each actual sleep is jittered (see
    /// [`backoff_schedule`]).
    pub retry_backoff: Duration,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            connect_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(10),
            connect_retries: 3,
            retry_backoff: Duration::from_millis(50),
        }
    }
}

/// What the counters RPC returns: named counter values plus named
/// histogram snapshots (SUT and `net.server.*` merged).
pub type RemoteCounters = (Vec<(String, u64)>, Vec<(String, HistogramSnapshot)>);

/// A pooled TCP client implementing the driver's [`Connector`] trait.
pub struct RemoteConnector {
    addr: String,
    config: NetConfig,
    pool: Mutex<Vec<TcpStream>>,
    ever_connected: AtomicBool,
    /// v3 correlation ids, unique across the whole pool so a response
    /// surfacing on the wrong connection can never be mistaken for ours.
    next_corr: AtomicU64,
    metrics: NetMetrics,
}

impl RemoteConnector {
    /// Connect with default [`NetConfig`]. Dials one connection eagerly so
    /// an unreachable server fails here, not mid-run.
    pub fn connect(addr: impl Into<String>) -> SnbResult<RemoteConnector> {
        RemoteConnector::with_config(addr, NetConfig::default())
    }

    /// Connect with an explicit config (see [`RemoteConnector::connect`]).
    pub fn with_config(addr: impl Into<String>, config: NetConfig) -> SnbResult<RemoteConnector> {
        let client = RemoteConnector {
            addr: addr.into(),
            config,
            pool: Mutex::new(Vec::new()),
            ever_connected: AtomicBool::new(false),
            next_corr: AtomicU64::new(1),
            metrics: NetMetrics::new("client"),
        };
        let conn = client.dial()?;
        client.checkin(conn);
        Ok(client)
    }

    /// The client side's net counters.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }

    /// Fetch the server's counters (SUT + `net.server.*`) and histogram
    /// snapshots via the RPC.
    pub fn remote_counters(&self) -> SnbResult<RemoteCounters> {
        let mut payload = Vec::new();
        Request::Counters.encode(&mut payload);
        match self.request(&payload)? {
            Response::Counters { counters, histograms } => Ok((counters, histograms)),
            Response::Error(e) => Err(e),
            _ => Err(SnbError::Config("protocol mismatch: wrong reply to counters".into())),
        }
    }

    /// Fetch the server's shard identity and replicated-update horizon via
    /// the GCT RPC: `(shard_index, shard_count, horizon_millis)`.
    pub fn remote_gct(&self) -> SnbResult<(u32, u32, i64)> {
        let mut payload = Vec::new();
        Request::Gct.encode(&mut payload);
        match self.request(&payload)? {
            Response::Gct { shard, shards, horizon } => Ok((shard, shards, horizon)),
            Response::Error(e) => Err(e),
            _ => Err(SnbError::Config("protocol mismatch: wrong reply to gct".into())),
        }
    }

    /// Dial with bounded retry + jittered exponential backoff. Only
    /// *connecting* is retried; requests never are.
    fn dial(&self) -> SnbResult<TcpStream> {
        let schedule =
            backoff_schedule(self.config.retry_backoff, self.config.connect_retries, dial_seed());
        let mut sleeps = schedule.into_iter();
        loop {
            match self.dial_once() {
                Ok(stream) => {
                    self.metrics.connections.inc();
                    if self.ever_connected.swap(true, Ordering::Relaxed) {
                        self.metrics.reconnects.inc();
                    }
                    return Ok(stream);
                }
                Err(e) => {
                    self.metrics.errors.inc();
                    match sleeps.next() {
                        Some(delay) => std::thread::sleep(delay),
                        None => return Err(e),
                    }
                }
            }
        }
    }

    fn dial_once(&self) -> SnbResult<TcpStream> {
        let addrs: Vec<SocketAddr> = self
            .addr
            .to_socket_addrs()
            .map_err(|e| SnbError::Config(format!("cannot resolve {}: {e}", self.addr)))?
            .collect();
        let mut last_err: Option<std::io::Error> = None;
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, self.config.connect_timeout) {
                Ok(stream) => {
                    return handshake_v3(stream, &self.config, &self.addr);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(SnbError::Io(last_err.unwrap_or_else(|| {
            std::io::Error::other(format!("{} resolved to no addresses", self.addr))
        })))
    }

    fn checkout(&self) -> SnbResult<TcpStream> {
        if let Some(stream) = self.pool.lock().unwrap_or_else(|e| e.into_inner()).pop() {
            return Ok(stream);
        }
        self.dial()
    }

    fn checkin(&self, stream: TcpStream) {
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).push(stream);
    }

    /// One request round trip. A healthy exchange returns the connection to
    /// the pool; any transport error poisons (drops) the connection — the
    /// request may have reached the server, so it must not be replayed.
    fn request(&self, payload: &[u8]) -> SnbResult<Response> {
        let mut stream = self.checkout()?;
        self.metrics.requests.inc();
        let corr = self.next_corr.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let result = (|| -> std::io::Result<Response> {
            let mut framed = Vec::with_capacity(payload.len() + 8);
            codec::put_corr(&mut framed, corr);
            framed.extend_from_slice(payload);
            let n_out = codec::write_frame(&mut stream, &framed)?;
            self.metrics.bytes_out.add(n_out as u64);
            let mut frame = Vec::new();
            let n_in = codec::read_frame(&mut stream, &mut frame)?;
            self.metrics.bytes_in.add(n_in as u64);
            let (echoed, body) = codec::take_corr(&frame).ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "response frame too short")
            })?;
            if echoed != corr {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("correlation mismatch: sent {corr}, got {echoed}"),
                ));
            }
            Response::decode(body).ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response frame")
            })
        })();
        self.metrics.request_micros.record(started.elapsed().as_micros() as u64);
        match result {
            Ok(response) => {
                self.checkin(stream);
                Ok(response)
            }
            Err(e) => {
                self.metrics.errors.inc();
                drop(stream);
                Err(SnbError::Io(e))
            }
        }
    }

    /// Scatter phase 1: check a connection out and write one framed
    /// request without waiting for the reply. The caller holds the stream
    /// and must follow up with [`finish_request`](Self::finish_request) —
    /// writing to every shard before reading from any overlaps the
    /// shards' execution. On a write error the connection is dropped
    /// (poisoned), never returned to the pool.
    pub(crate) fn start_request(&self, payload: &[u8]) -> SnbResult<(TcpStream, u64)> {
        let mut stream = self.checkout()?;
        self.metrics.requests.inc();
        let corr = self.next_corr.fetch_add(1, Ordering::Relaxed);
        let mut framed = Vec::with_capacity(payload.len() + 8);
        codec::put_corr(&mut framed, corr);
        framed.extend_from_slice(payload);
        match codec::write_frame(&mut stream, &framed) {
            Ok(n) => {
                self.metrics.bytes_out.add(n as u64);
                Ok((stream, corr))
            }
            Err(e) => {
                self.metrics.errors.inc();
                drop(stream);
                Err(SnbError::Io(e))
            }
        }
    }

    /// Scatter phase 2: read the response for a request started with
    /// [`start_request`](Self::start_request). A healthy exchange returns
    /// the connection to the pool; any transport error poisons it — the
    /// request reached the server, so it must not be replayed.
    pub(crate) fn finish_request(&self, mut stream: TcpStream, corr: u64) -> SnbResult<Response> {
        let result = (|| -> std::io::Result<Response> {
            let mut frame = Vec::new();
            let n_in = codec::read_frame(&mut stream, &mut frame)?;
            self.metrics.bytes_in.add(n_in as u64);
            let (echoed, body) = codec::take_corr(&frame).ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "response frame too short")
            })?;
            if echoed != corr {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("correlation mismatch: sent {corr}, got {echoed}"),
                ));
            }
            Response::decode(body).ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response frame")
            })
        })();
        match result {
            Ok(response) => {
                self.checkin(stream);
                Ok(response)
            }
            Err(e) => {
                self.metrics.errors.inc();
                drop(stream);
                Err(SnbError::Io(e))
            }
        }
    }
}

/// The dial-retry sleep schedule: attempt `i` (0-based) sleeps a uniformly
/// random duration in `[ceil/2, ceil]` where `ceil = base · 2^i` — the
/// classic equal-jitter variant of exponential backoff. Deterministic
/// doubling synchronizes clients that failed together (a restarting server
/// sees its whole fleet re-dial in lockstep waves); the jitter spreads
/// each wave over half its window while keeping the exponential envelope,
/// and the lower bound keeps retry pressure bounded below the
/// deterministic schedule's.
pub fn backoff_schedule(base: Duration, retries: u32, seed: u64) -> Vec<Duration> {
    let mut rng = snb_core::rng::Rng::new(seed);
    (0..retries)
        .map(|i| {
            let ceil = base.saturating_mul(1u32 << i.min(20)).as_nanos().min(u64::MAX as u128);
            let ceil = ceil as u64;
            let jittered = ceil / 2 + rng.next_u64() % (ceil / 2 + 1);
            Duration::from_nanos(jittered)
        })
        .collect()
}

/// Per-dial seed for the backoff jitter: wall-clock derived so two clients
/// that fail at the same instant still jitter apart (different nanos), and
/// so repeated dials by one client draw fresh schedules.
fn dial_seed() -> u64 {
    match std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => d.as_nanos() as u64,
        Err(_) => 0x005e_edba_5e0f_f5e7u64,
    }
}

/// Perform the client half of the v3 handshake on a fresh stream: apply
/// timeouts, disable Nagle, send our magic, and require the server to echo
/// it (a v2-only server would echo nothing or close).
fn handshake_v3(mut stream: TcpStream, config: &NetConfig, addr: &str) -> SnbResult<TcpStream> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(config.request_timeout))?;
    stream.set_write_timeout(Some(config.request_timeout))?;
    stream.write_all(&NET_MAGIC_V3)?;
    let mut echo = [0u8; 8];
    stream.read_exact(&mut echo)?;
    if echo != NET_MAGIC_V3 {
        return Err(SnbError::Config(format!(
            "{addr} is not an snb-net v3 server (bad handshake)"
        )));
    }
    Ok(stream)
}

/// A single v3 connection with decoupled send and receive halves, for load
/// generation. Unlike [`RemoteConnector`] (one request in flight per pooled
/// connection), `PipelinedClient` lets the caller keep a window of requests
/// outstanding: [`send`](PipelinedClient::send) returns as soon as the
/// request is written, and [`recv`](PipelinedClient::recv) blocks for the
/// next response the server finished, identified by correlation id.
///
/// Any transport error poisons the client: the connection's framing can no
/// longer be trusted, so subsequent calls fail fast.
pub struct PipelinedClient {
    stream: TcpStream,
    next_corr: u64,
    in_flight: usize,
    poisoned: bool,
}

impl PipelinedClient {
    /// Dial and handshake (v3) with default [`NetConfig`].
    pub fn connect(addr: impl Into<String>) -> SnbResult<PipelinedClient> {
        PipelinedClient::with_config(addr, NetConfig::default())
    }

    /// Dial and handshake (v3) with an explicit config. No connect retries:
    /// load sweeps want to see dial failures, not paper over them.
    pub fn with_config(addr: impl Into<String>, config: NetConfig) -> SnbResult<PipelinedClient> {
        let addr = addr.into();
        let sock_addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| SnbError::Config(format!("cannot resolve {addr}: {e}")))?
            .collect();
        let mut last_err: Option<std::io::Error> = None;
        for sock in sock_addrs {
            match TcpStream::connect_timeout(&sock, config.connect_timeout) {
                Ok(stream) => {
                    let stream = handshake_v3(stream, &config, &addr)?;
                    return Ok(PipelinedClient {
                        stream,
                        next_corr: 1,
                        in_flight: 0,
                        poisoned: false,
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(SnbError::Io(
            last_err.unwrap_or_else(|| {
                std::io::Error::other(format!("{addr} resolved to no addresses"))
            }),
        ))
    }

    /// Requests sent whose responses have not yet been received.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Write one operation to the wire and return its correlation id
    /// without waiting for the response.
    pub fn send(&mut self, op: &Operation) -> SnbResult<u64> {
        let mut payload = Vec::new();
        codec::encode_execute(op, None, &mut payload);
        self.send_payload(&payload)
    }

    /// Write a counters RPC to the wire and return its correlation id.
    pub fn send_counters(&mut self) -> SnbResult<u64> {
        let mut payload = Vec::new();
        Request::Counters.encode(&mut payload);
        self.send_payload(&payload)
    }

    fn send_payload(&mut self, payload: &[u8]) -> SnbResult<u64> {
        self.check_poisoned()?;
        let corr = self.next_corr;
        self.next_corr += 1;
        let mut framed = Vec::with_capacity(payload.len() + 8);
        codec::put_corr(&mut framed, corr);
        framed.extend_from_slice(payload);
        if let Err(e) = codec::write_frame(&mut self.stream, &framed) {
            self.poisoned = true;
            return Err(SnbError::Io(e));
        }
        self.in_flight += 1;
        Ok(corr)
    }

    /// Block for the next completed response, in server completion order
    /// (not send order). Returns the correlation id it answers.
    pub fn recv(&mut self) -> SnbResult<(u64, Response)> {
        self.check_poisoned()?;
        if self.in_flight == 0 {
            return Err(SnbError::Config("recv with no requests in flight".into()));
        }
        let result = (|| -> std::io::Result<(u64, Response)> {
            let mut frame = Vec::new();
            codec::read_frame(&mut self.stream, &mut frame)?;
            let (corr, body) = codec::take_corr(&frame).ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "response frame too short")
            })?;
            let response = Response::decode(body).ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response frame")
            })?;
            Ok((corr, response))
        })();
        match result {
            Ok(ok) => {
                self.in_flight -= 1;
                Ok(ok)
            }
            Err(e) => {
                self.poisoned = true;
                Err(SnbError::Io(e))
            }
        }
    }

    fn check_poisoned(&self) -> SnbResult<()> {
        if self.poisoned {
            return Err(SnbError::Config(
                "pipelined connection poisoned by an earlier transport error".into(),
            ));
        }
        Ok(())
    }
}

/// Re-anchor server spans onto the client's clock and file them. The
/// server's root span (recorded with sentinel parent 0 because its true
/// parent — our wire span — lives in this process's id space) is centered
/// inside the wire span's unaccounted time — `offset = slack/2` splits the
/// round trip symmetrically, the classic NTP assumption — then grafted
/// onto the wire span, so the stitched trace nests: wire span ⊇ server
/// root ⊇ server children.
fn stitch_server_spans(wire: &SpanGuard, mut spans: Vec<SpanData>) {
    let rtt = trace::now_micros().saturating_sub(wire.start_us());
    let Some(root) = spans.iter().find(|s| s.parent_id == 0) else {
        return; // no recognizable root: drop rather than file unanchored
    };
    let slack = rtt.saturating_sub(root.dur_us);
    let target = wire.start_us() + slack / 2;
    let shift = target as i64 - root.start_us as i64;
    for s in &mut spans {
        s.start_us = s.start_us.saturating_add_signed(shift);
    }
    trace::record_foreign_rooted(spans, wire.span_id());
}

impl Connector for RemoteConnector {
    fn execute(&self, op: &Operation) -> SnbResult<OpOutcome> {
        // The wire span covers serialize → RTT → deserialize; its context
        // rides in the request so the server's spans come back stitched
        // underneath it.
        static SPAN_REQUEST: NameId = NameId::new("net.client.request");
        let wire = trace::span(&SPAN_REQUEST);
        let ctx = (wire.span_id() != 0).then(|| (wire.trace_id(), wire.span_id()));
        let mut payload = Vec::new();
        codec::encode_execute(op, ctx, &mut payload);
        match self.request(&payload)? {
            Response::Outcome(outcome, spans) => {
                if ctx.is_some() && !spans.is_empty() {
                    stitch_server_spans(&wire, spans);
                }
                Ok(outcome)
            }
            Response::Error(e) => {
                self.metrics.errors.inc();
                Err(e)
            }
            _ => Err(SnbError::Config("protocol mismatch: wrong reply to execute".into())),
        }
    }

    fn counters(&self) -> Vec<(String, u64)> {
        let mut counters = self.metrics.snapshot();
        if let Ok((remote, _)) = self.remote_counters() {
            counters.extend(remote);
        }
        counters
    }

    fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        let mut histograms =
            vec![("net.client.request_micros".to_string(), self.metrics.request_micros.snapshot())];
        if let Ok((_, remote)) = self.remote_counters() {
            histograms.extend(remote);
        }
        histograms
    }

    fn execute_partial(&self, op: &Operation) -> SnbResult<PartialOutcome> {
        let mut payload = Vec::new();
        codec::encode_partial_req(op, &mut payload);
        match self.request(&payload)? {
            Response::Partial(partial, seed) => Ok(PartialOutcome {
                partial,
                seed: seed.map(|(m, date)| (MessageId(m), SimTime(date))),
            }),
            Response::Error(e) => {
                self.metrics.errors.inc();
                Err(e)
            }
            _ => Err(SnbError::Config("protocol mismatch: wrong reply to partial".into())),
        }
    }

    fn gct_horizon(&self) -> i64 {
        self.remote_gct().map(|(_, _, horizon)| horizon).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_stays_inside_the_jitter_envelope() {
        let base = Duration::from_millis(50);
        for seed in 0..64 {
            let schedule = backoff_schedule(base, 6, seed);
            assert_eq!(schedule.len(), 6);
            for (i, d) in schedule.iter().enumerate() {
                let ceil = base * (1u32 << i);
                assert!(*d >= ceil / 2, "attempt {i} slept {d:?}, below floor {:?}", ceil / 2);
                assert!(*d <= ceil, "attempt {i} slept {d:?}, above ceiling {ceil:?}");
            }
        }
    }

    #[test]
    fn backoff_schedule_actually_jitters() {
        let a = backoff_schedule(Duration::from_millis(50), 4, 1);
        let b = backoff_schedule(Duration::from_millis(50), 4, 2);
        assert_ne!(a, b, "different seeds drew identical schedules");
    }

    #[test]
    fn backoff_schedule_is_empty_when_retries_are_disabled() {
        assert!(backoff_schedule(Duration::from_millis(50), 0, 7).is_empty());
    }
}
