//! [`RemoteConnector`] — the driver side of the wire.
//!
//! Implements [`Connector`] over TCP with a connection pool sized by
//! demand: each concurrent `execute` checks a connection out, so a driver
//! with P partitions settles on at most P connections. Connect failures are
//! retried with bounded exponential backoff; a request that has been *sent*
//! is NEVER retried — updates are not idempotent, and a timed-out update
//! may well have executed. The error surfaces to the driver, which aborts
//! the run (the benchmark's required behavior on SUT failure).

use crate::codec::{self, Request, Response, NET_MAGIC};
use crate::metrics::NetMetrics;
use snb_core::{SnbError, SnbResult};
use snb_driver::connector::{Connector, OpOutcome, Operation};
use snb_obs::trace::{self, NameId, SpanData, SpanGuard};
use snb_obs::HistogramSnapshot;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Client-side timeouts and retry policy.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Per-address TCP connect timeout.
    pub connect_timeout: Duration,
    /// Read/write timeout for one request round trip.
    pub request_timeout: Duration,
    /// Additional dial attempts after a failed connect (0 = fail fast).
    pub connect_retries: u32,
    /// Sleep before the first retry; doubles per subsequent retry.
    pub retry_backoff: Duration,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            connect_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(10),
            connect_retries: 3,
            retry_backoff: Duration::from_millis(50),
        }
    }
}

/// What the counters RPC returns: named counter values plus named
/// histogram snapshots (SUT and `net.server.*` merged).
pub type RemoteCounters = (Vec<(String, u64)>, Vec<(String, HistogramSnapshot)>);

/// A pooled TCP client implementing the driver's [`Connector`] trait.
pub struct RemoteConnector {
    addr: String,
    config: NetConfig,
    pool: Mutex<Vec<TcpStream>>,
    ever_connected: AtomicBool,
    metrics: NetMetrics,
}

impl RemoteConnector {
    /// Connect with default [`NetConfig`]. Dials one connection eagerly so
    /// an unreachable server fails here, not mid-run.
    pub fn connect(addr: impl Into<String>) -> SnbResult<RemoteConnector> {
        RemoteConnector::with_config(addr, NetConfig::default())
    }

    /// Connect with an explicit config (see [`RemoteConnector::connect`]).
    pub fn with_config(addr: impl Into<String>, config: NetConfig) -> SnbResult<RemoteConnector> {
        let client = RemoteConnector {
            addr: addr.into(),
            config,
            pool: Mutex::new(Vec::new()),
            ever_connected: AtomicBool::new(false),
            metrics: NetMetrics::new("client"),
        };
        let conn = client.dial()?;
        client.checkin(conn);
        Ok(client)
    }

    /// The client side's net counters.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }

    /// Fetch the server's counters (SUT + `net.server.*`) and histogram
    /// snapshots via the RPC.
    pub fn remote_counters(&self) -> SnbResult<RemoteCounters> {
        let mut payload = Vec::new();
        Request::Counters.encode(&mut payload);
        match self.request(&payload)? {
            Response::Counters { counters, histograms } => Ok((counters, histograms)),
            Response::Error(e) => Err(e),
            Response::Outcome(..) => {
                Err(SnbError::Config("protocol mismatch: outcome reply to counters".into()))
            }
        }
    }

    /// Dial with bounded retry + exponential backoff. Only *connecting* is
    /// retried; requests never are.
    fn dial(&self) -> SnbResult<TcpStream> {
        let mut backoff = self.config.retry_backoff;
        let mut attempts_left = self.config.connect_retries;
        loop {
            match self.dial_once() {
                Ok(stream) => {
                    self.metrics.connections.inc();
                    if self.ever_connected.swap(true, Ordering::Relaxed) {
                        self.metrics.reconnects.inc();
                    }
                    return Ok(stream);
                }
                Err(e) => {
                    self.metrics.errors.inc();
                    if attempts_left == 0 {
                        return Err(e);
                    }
                    attempts_left -= 1;
                    std::thread::sleep(backoff);
                    backoff = backoff.saturating_mul(2);
                }
            }
        }
    }

    fn dial_once(&self) -> SnbResult<TcpStream> {
        let addrs: Vec<SocketAddr> = self
            .addr
            .to_socket_addrs()
            .map_err(|e| SnbError::Config(format!("cannot resolve {}: {e}", self.addr)))?
            .collect();
        let mut last_err: Option<std::io::Error> = None;
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, self.config.connect_timeout) {
                Ok(mut stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(self.config.request_timeout))?;
                    stream.set_write_timeout(Some(self.config.request_timeout))?;
                    stream.write_all(&NET_MAGIC)?;
                    let mut echo = [0u8; 8];
                    stream.read_exact(&mut echo)?;
                    if echo != NET_MAGIC {
                        return Err(SnbError::Config(format!(
                            "{} is not an snb-net server (bad handshake)",
                            self.addr
                        )));
                    }
                    return Ok(stream);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(SnbError::Io(last_err.unwrap_or_else(|| {
            std::io::Error::other(format!("{} resolved to no addresses", self.addr))
        })))
    }

    fn checkout(&self) -> SnbResult<TcpStream> {
        if let Some(stream) = self.pool.lock().unwrap_or_else(|e| e.into_inner()).pop() {
            return Ok(stream);
        }
        self.dial()
    }

    fn checkin(&self, stream: TcpStream) {
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).push(stream);
    }

    /// One request round trip. A healthy exchange returns the connection to
    /// the pool; any transport error poisons (drops) the connection — the
    /// request may have reached the server, so it must not be replayed.
    fn request(&self, payload: &[u8]) -> SnbResult<Response> {
        let mut stream = self.checkout()?;
        self.metrics.requests.inc();
        let started = Instant::now();
        let result = (|| -> std::io::Result<Response> {
            let n_out = codec::write_frame(&mut stream, payload)?;
            self.metrics.bytes_out.add(n_out as u64);
            let mut frame = Vec::new();
            let n_in = codec::read_frame(&mut stream, &mut frame)?;
            self.metrics.bytes_in.add(n_in as u64);
            Response::decode(&frame).ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response frame")
            })
        })();
        self.metrics.request_micros.record(started.elapsed().as_micros() as u64);
        match result {
            Ok(response) => {
                self.checkin(stream);
                Ok(response)
            }
            Err(e) => {
                self.metrics.errors.inc();
                drop(stream);
                Err(SnbError::Io(e))
            }
        }
    }
}

/// Re-anchor server spans onto the client's clock and file them. The
/// server's root span (recorded with sentinel parent 0 because its true
/// parent — our wire span — lives in this process's id space) is centered
/// inside the wire span's unaccounted time — `offset = slack/2` splits the
/// round trip symmetrically, the classic NTP assumption — then grafted
/// onto the wire span, so the stitched trace nests: wire span ⊇ server
/// root ⊇ server children.
fn stitch_server_spans(wire: &SpanGuard, mut spans: Vec<SpanData>) {
    let rtt = trace::now_micros().saturating_sub(wire.start_us());
    let Some(root) = spans.iter().find(|s| s.parent_id == 0) else {
        return; // no recognizable root: drop rather than file unanchored
    };
    let slack = rtt.saturating_sub(root.dur_us);
    let target = wire.start_us() + slack / 2;
    let shift = target as i64 - root.start_us as i64;
    for s in &mut spans {
        s.start_us = s.start_us.saturating_add_signed(shift);
    }
    trace::record_foreign_rooted(spans, wire.span_id());
}

impl Connector for RemoteConnector {
    fn execute(&self, op: &Operation) -> SnbResult<OpOutcome> {
        // The wire span covers serialize → RTT → deserialize; its context
        // rides in the request so the server's spans come back stitched
        // underneath it.
        static SPAN_REQUEST: NameId = NameId::new("net.client.request");
        let wire = trace::span(&SPAN_REQUEST);
        let ctx = (wire.span_id() != 0).then(|| (wire.trace_id(), wire.span_id()));
        let mut payload = Vec::new();
        codec::encode_execute(op, ctx, &mut payload);
        match self.request(&payload)? {
            Response::Outcome(outcome, spans) => {
                if ctx.is_some() && !spans.is_empty() {
                    stitch_server_spans(&wire, spans);
                }
                Ok(outcome)
            }
            Response::Error(e) => {
                self.metrics.errors.inc();
                Err(e)
            }
            Response::Counters { .. } => {
                Err(SnbError::Config("protocol mismatch: counters reply to execute".into()))
            }
        }
    }

    fn counters(&self) -> Vec<(String, u64)> {
        let mut counters = self.metrics.snapshot();
        if let Ok((remote, _)) = self.remote_counters() {
            counters.extend(remote);
        }
        counters
    }

    fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        let mut histograms =
            vec![("net.client.request_micros".to_string(), self.metrics.request_micros.snapshot())];
        if let Ok((_, remote)) = self.remote_counters() {
            histograms.extend(remote);
        }
        histograms
    }
}
