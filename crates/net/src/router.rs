//! [`ShardedConnector`] — the driver side of a *distributed* SUT.
//!
//! The paper's driver is explicitly built to benchmark clustered systems
//! (§4: update streams are partitioned across machines and the GCT exists
//! to keep dependent updates ordered across them). This router implements
//! the driver's [`Connector`] trait over N `snb serve --shard i/N`
//! processes, each holding the replicated person/knows graph plus a
//! forum-partitioned slice of the activity (see
//! [`snb_core::shard::ShardMap`] and DESIGN.md "Sharding"):
//!
//! * **Point operations** route to one shard. Person-anchored lookups
//!   (Q1/Q11/Q13, S1/S3) can be answered anywhere — persons are
//!   replicated — so they route by person-id range to spread load.
//!   Message-anchored lookups (S4–S7) route to the shard owning the
//!   message's forum, resolved through a message → shard directory seeded
//!   from the dataset and learned from routed AddPost/AddComment.
//! * **Scatterable reads** (the other eleven complex queries and S2) fan
//!   out as v3 `Partial` requests — written to *every* shard before
//!   reading from *any*, so the shards execute concurrently — and the
//!   exact client-side merge (`snb_queries::sharded`) reassembles the
//!   global answer.
//! * **Updates** route by ownership: forum-tree operations (U4–U7) to the
//!   forum's shard, likes (U2/U3) through the message directory, and the
//!   replicated-row operations (U1 addPerson, U8 addFriendship) broadcast
//!   to every shard. A broadcast completes only when all shards have
//!   acked, which is exactly the GCT guarantee the driver needs: by the
//!   time a dependent operation's `T_DEP ≤ GCT` gate opens, the person it
//!   depends on is visible on whichever shard the operation lands on.
//!   [`ShardedConnector::gct_check`] verifies that invariant end-to-end
//!   through the servers' GCT RPC.
//!
//! Failure semantics follow the single-shard rules: connects are retried
//! with jittered backoff, but a request that has been *sent* is never
//! replayed — one dead shard poisons its connection, surfaces an error,
//! and fails the run promptly (the benchmark's required behavior).

use crate::client::{NetConfig, RemoteConnector};
use crate::codec::{self, Response};
use snb_core::shard::ShardMap;
use snb_core::update::UpdateOp;
use snb_core::{ForumId, MessageId, SnbError, SnbResult};
use snb_driver::connector::{anchor_person, Connector, OpOutcome, Operation};
use snb_obs::HistogramSnapshot;
use snb_queries::params::{ComplexQuery, ShortQuery};
use snb_queries::sharded::{self, Partial};
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::RwLock;

/// A [`Connector`] that routes the interactive workload across N shard
/// servers and merges scattered reads exactly (see module docs).
pub struct ShardedConnector {
    shards: Vec<RemoteConnector>,
    map: ShardMap,
    /// message id → owning shard. Seeded from the dataset's message →
    /// forum index ([`ShardedConnector::seed_routes`]) and learned from
    /// every AddPost/AddComment this router routes, so any message a like
    /// or short read can reference has an entry.
    routes: RwLock<HashMap<u64, u32>>,
    /// Max creation date of *completed* replicated-update broadcasts
    /// (every shard acked). Shard horizons must never lag this value.
    broadcast_horizon: AtomicI64,
}

impl ShardedConnector {
    /// Connect to one server per address with default [`NetConfig`].
    pub fn connect<S: AsRef<str>>(addrs: &[S]) -> SnbResult<ShardedConnector> {
        ShardedConnector::with_config(addrs, NetConfig::default())
    }

    /// Connect with an explicit config. Each server's GCT RPC must report
    /// the shard identity its position implies — shard i of N at
    /// `addrs[i]` — so a mis-ordered address list or a server loaded with
    /// the wrong slice fails here, not with silently partial answers.
    pub fn with_config<S: AsRef<str>>(
        addrs: &[S],
        config: NetConfig,
    ) -> SnbResult<ShardedConnector> {
        if addrs.is_empty() {
            return Err(SnbError::Config("sharded connector needs at least one address".into()));
        }
        let shards = addrs
            .iter()
            .map(|a| RemoteConnector::with_config(a.as_ref(), config.clone()))
            .collect::<SnbResult<Vec<_>>>()?;
        let want = shards.len() as u32;
        for (i, shard) in shards.iter().enumerate() {
            let (index, count, _) = shard.remote_gct()?;
            if index != i as u32 || count != want {
                return Err(SnbError::Config(format!(
                    "shard identity mismatch at {}: server says shard {index}/{count}, \
                     address order implies {i}/{want}",
                    addrs[i].as_ref(),
                )));
            }
        }
        Ok(ShardedConnector {
            shards,
            map: ShardMap::new(want),
            routes: RwLock::new(HashMap::new()),
            broadcast_horizon: AtomicI64::new(0),
        })
    }

    /// Number of shards this router drives.
    pub fn shard_count(&self) -> u32 {
        self.map.shards()
    }

    /// Seed the message → shard directory from the dataset's message →
    /// forum index (`Dataset::message_routes`). Must cover every message a
    /// like or message-anchored short read can reference at run start;
    /// update-era messages are learned as the router routes them.
    pub fn seed_routes(&self, routes: impl IntoIterator<Item = (MessageId, ForumId)>) {
        let mut dir = self.routes.write().unwrap_or_else(|e| e.into_inner());
        for (message, forum) in routes {
            dir.insert(message.raw(), self.map.shard_of_forum(forum));
        }
    }

    fn learn_route(&self, message: MessageId, forum: ForumId) {
        self.routes
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(message.raw(), self.map.shard_of_forum(forum));
    }

    fn route_of_message(&self, message: MessageId) -> SnbResult<u32> {
        self.routes
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&message.raw())
            .copied()
            .ok_or(SnbError::NotFound { entity: "message route", id: message.raw() })
    }

    /// Verify the GCT dependency-visibility invariant: every shard's
    /// replicated-update horizon has reached everything this router has
    /// finished broadcasting. Reads the local watermark *before* fanning
    /// out, so broadcasts completing concurrently can only help.
    pub fn gct_check(&self) -> SnbResult<()> {
        let broadcast = self.broadcast_horizon.load(Ordering::Acquire);
        for (i, shard) in self.shards.iter().enumerate() {
            let (index, count, horizon) = shard.remote_gct()?;
            if index != i as u32 || count != self.shards.len() as u32 {
                return Err(SnbError::Config(format!(
                    "shard {i} now reports identity {index}/{count}"
                )));
            }
            if horizon < broadcast {
                return Err(SnbError::Config(format!(
                    "GCT violation: shard {i} replicated horizon {horizon} lags \
                     completed broadcast watermark {broadcast}"
                )));
            }
        }
        Ok(())
    }

    fn route_update(&self, op: &Operation, u: &UpdateOp) -> SnbResult<OpOutcome> {
        match u {
            // Replicated rows: sequential broadcast. The operation is
            // complete — and GCT may advance past it — only once every
            // shard acked; any failure aborts with shards divergent, which
            // fails the run (updates are never retried).
            UpdateOp::AddPerson(_) | UpdateOp::AddFriendship(_) => {
                let mut outcome = OpOutcome::default();
                for shard in &self.shards {
                    outcome = shard.execute(op)?;
                }
                self.broadcast_horizon.fetch_max(u.creation_date().0, Ordering::Release);
                Ok(outcome)
            }
            UpdateOp::AddForum(f) => self.to_forum_shard(op, f.id),
            UpdateOp::AddMembership(m) => self.to_forum_shard(op, m.forum),
            UpdateOp::AddPost(p) => {
                let outcome = self.to_forum_shard(op, p.forum)?;
                self.learn_route(p.id, p.forum);
                Ok(outcome)
            }
            UpdateOp::AddComment(c) => {
                let outcome = self.to_forum_shard(op, c.forum)?;
                self.learn_route(c.id, c.forum);
                Ok(outcome)
            }
            UpdateOp::AddPostLike(l) | UpdateOp::AddCommentLike(l) => {
                let shard = self.route_of_message(l.message)?;
                self.shards[shard as usize].execute(op)
            }
        }
    }

    fn to_forum_shard(&self, op: &Operation, forum: ForumId) -> SnbResult<OpOutcome> {
        self.shards[self.map.shard_of_forum(forum) as usize].execute(op)
    }

    /// Fan a partial request out to every shard — all writes before any
    /// read, so shard executions overlap — and collect the partials plus
    /// each shard's walk-seed candidate. All shards are drained even after
    /// an error (healthy connections return to their pools); the first
    /// error wins.
    #[allow(clippy::type_complexity)]
    fn scatter(&self, op: &Operation) -> SnbResult<Vec<(Partial, Option<(u64, i64)>)>> {
        let mut payload = Vec::new();
        codec::encode_partial_req(op, &mut payload);
        let mut in_flight = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            in_flight.push(shard.start_request(&payload)?);
        }
        let mut parts = Vec::with_capacity(self.shards.len());
        let mut first_err: Option<SnbError> = None;
        for (shard, (stream, corr)) in self.shards.iter().zip(in_flight) {
            match shard.finish_request(stream, corr) {
                Ok(Response::Partial(p, seed)) => parts.push((p, seed)),
                Ok(Response::Error(e)) => first_err = first_err.or(Some(e)),
                Ok(_) => {
                    first_err = first_err.or(Some(SnbError::Config(
                        "protocol mismatch: wrong reply to partial".into(),
                    )));
                }
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(parts),
        }
    }

    fn scatter_complex(&self, op: &Operation, q: &ComplexQuery) -> SnbResult<OpOutcome> {
        let parts = self.scatter(op)?;
        let seed_message = merge_seed(&parts);
        let merged = sharded::merge(q, parts.into_iter().map(|(p, _)| p).collect());
        Ok(OpOutcome { rows: merged.len(), seed_person: anchor_person(q), seed_message })
    }

    fn scatter_short(&self, op: &Operation, s: &ShortQuery) -> SnbResult<OpOutcome> {
        let parts = self.scatter(op)?;
        let seed_message = merge_seed(&parts);
        let merged = sharded::merge_short(s, parts.into_iter().map(|(p, _)| p).collect());
        let seed_person = match *s {
            ShortQuery::S2(p) => Some(p),
            _ => None,
        };
        Ok(OpOutcome { rows: merged.len(), seed_person, seed_message })
    }

    fn route_short(&self, s: &ShortQuery) -> SnbResult<u32> {
        Ok(match *s {
            // Person rows are replicated; spread by id range.
            ShortQuery::S1(p) | ShortQuery::S3(p) => self.map.shard_of_person(p),
            // A message, its metadata, and its whole discussion tree
            // (S7's replies) live on the forum owner's shard.
            ShortQuery::S4(m) | ShortQuery::S5(m) | ShortQuery::S6(m) | ShortQuery::S7(m) => {
                self.route_of_message(m)?
            }
            ShortQuery::S2(_) => unreachable!("S2 scatters"),
        })
    }
}

/// The anchor person's newest message across all shards: each shard's
/// partial carries its local `(message, date)` candidate, and the walk
/// orders newest-first by `(date, id)`, so the `(date, id)`-max over
/// shards is exactly what a single-process store would seed with.
fn merge_seed(parts: &[(Partial, Option<(u64, i64)>)]) -> Option<MessageId> {
    parts.iter().filter_map(|(_, s)| *s).max_by_key(|&(m, d)| (d, m)).map(|(m, _)| MessageId(m))
}

impl Connector for ShardedConnector {
    fn execute(&self, op: &Operation) -> SnbResult<OpOutcome> {
        match op {
            Operation::Update(u) => self.route_update(op, u),
            Operation::Complex(q) if sharded::scatters(q) => self.scatter_complex(op, q),
            Operation::Complex(q) => {
                let shard = anchor_person(q).map_or(0, |p| self.map.shard_of_person(p));
                self.shards[shard as usize].execute(op)
            }
            Operation::Short(s) if sharded::scatters_short(s) => self.scatter_short(op, s),
            Operation::Short(s) => self.shards[self.route_short(s)? as usize].execute(op),
        }
    }

    /// Full disclosure with per-shard identity: every shard's counters —
    /// its client link's `net.client.*` and the server's own dump,
    /// including `net.server.shard_index` / `shard_count` — prefixed
    /// `shard<i>.` so per-shard and aggregate views coexist in one report.
    fn counters(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            out.extend(
                shard.counters().into_iter().map(|(name, v)| (format!("shard{i}.{name}"), v)),
            );
        }
        out
    }

    fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        let mut out = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            out.extend(
                shard.histograms().into_iter().map(|(name, h)| (format!("shard{i}.{name}"), h)),
            );
        }
        out
    }

    fn gct_horizon(&self) -> i64 {
        self.broadcast_horizon.load(Ordering::Acquire)
    }
}
