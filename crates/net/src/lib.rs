//! # snb-net
//!
//! The networked SUT boundary. The paper's driver talks to its systems
//! under test over a client/server split (§4: the driver "issues queries
//! against the SUT" as a separate process); this crate reproduces that
//! boundary so driver-scalability experiments can measure real
//! serialization and socket costs instead of in-process calls:
//!
//! - [`codec`] — length-prefixed binary frames; updates reuse the WAL's
//!   `UpdateOp` encoding, so the workspace has one binary codec for
//!   mutations on disk and on the wire. Protocol v3 prefixes every frame
//!   payload with a correlation id so responses can complete out of order;
//!   v2 (no ids, strict request/response alternation) is still accepted.
//! - [`Server`] — a nonblocking readiness-loop TCP server (epoll-backed,
//!   fixed worker pool) wrapping any [`snb_driver::Connector`]
//!   (`snb serve`). Pipelines up to `max_pipeline` requests per v3
//!   connection; per-connection write queues are bounded and exert
//!   backpressure by pausing reads.
//! - [`RemoteConnector`] — a pooled client implementing `Connector`
//!   (`snb run --connect host:port`). Retries connects with bounded
//!   backoff; never retries a sent request (updates are not idempotent).
//! - [`PipelinedClient`] — a single-connection windowed client for load
//!   generation (`ext_concurrent_load`): decoupled send/recv matched by
//!   correlation id.
//!
//! Both sides keep `net.client.*` / `net.server.*` counters
//! ([`NetMetrics`]) that feed the full-disclosure report; the counters RPC
//! lets the driver pull the remote SUT's counters at run end.

pub mod client;
pub mod codec;
pub mod metrics;
pub mod router;
pub mod server;

pub use client::{NetConfig, PipelinedClient, RemoteConnector};
pub use codec::{read_frame, write_frame, Request, Response, MAX_FRAME, NET_MAGIC, NET_MAGIC_V3};
pub use metrics::NetMetrics;
pub use router::ShardedConnector;
pub use server::{Server, ServerConfig};
