//! # snb-net
//!
//! The networked SUT boundary. The paper's driver talks to its systems
//! under test over a client/server split (§4: the driver "issues queries
//! against the SUT" as a separate process); this crate reproduces that
//! boundary so driver-scalability experiments can measure real
//! serialization and socket costs instead of in-process calls:
//!
//! - [`codec`] — length-prefixed binary frames; updates reuse the WAL's
//!   `UpdateOp` encoding, so the workspace has one binary codec for
//!   mutations on disk and on the wire.
//! - [`Server`] — a blocking thread-per-connection TCP server wrapping any
//!   [`snb_driver::Connector`] (`snb serve`).
//! - [`RemoteConnector`] — a pooled client implementing `Connector`
//!   (`snb run --connect host:port`). Retries connects with bounded
//!   backoff; never retries a sent request (updates are not idempotent).
//!
//! Both sides keep `net.client.*` / `net.server.*` counters
//! ([`NetMetrics`]) that feed the full-disclosure report; the counters RPC
//! lets the driver pull the remote SUT's counters at run end.

pub mod client;
pub mod codec;
pub mod metrics;
pub mod server;

pub use client::{NetConfig, RemoteConnector};
pub use codec::{read_frame, write_frame, Request, Response, MAX_FRAME, NET_MAGIC};
pub use metrics::NetMetrics;
pub use server::Server;
