//! Net-layer counters, exported through the same full-disclosure channel as
//! every other subsystem (`layer.subsystem.metric` names, see `snb-obs`).

use snb_obs::{Counter, LatencyHistogram};

/// Counters kept by one side of the wire. Both the server and the
/// [`crate::RemoteConnector`] own one; [`NetMetrics::snapshot`] renders it
/// as `net.<side>.<metric>` pairs for the counters RPC and the driver's
/// full-disclosure report.
#[derive(Debug)]
pub struct NetMetrics {
    side: &'static str,
    /// Successful dials (client) or accepted connections (server).
    pub connections: Counter,
    /// Replacement connections dialed after the first (client only).
    pub reconnects: Counter,
    /// Requests sent (client) or served (server).
    pub requests: Counter,
    /// Failed dial attempts, transport errors, and error responses.
    pub errors: Counter,
    /// Bytes read off the wire, including frame prefixes.
    pub bytes_in: Counter,
    /// Bytes written to the wire, including frame prefixes.
    pub bytes_out: Counter,
    /// Request latency in microseconds: client-observed round trip on the
    /// client side, execute-to-encode service time on the server side.
    pub request_micros: LatencyHistogram,
}

impl NetMetrics {
    /// A metrics set whose snapshot renders under `net.<side>.`.
    pub fn new(side: &'static str) -> NetMetrics {
        NetMetrics {
            side,
            connections: Counter::detached(),
            reconnects: Counter::detached(),
            requests: Counter::detached(),
            errors: Counter::detached(),
            bytes_in: Counter::detached(),
            bytes_out: Counter::detached(),
            request_micros: LatencyHistogram::new(),
        }
    }

    /// Current values as `(name, value)` pairs, histogram summarized into
    /// count / mean / p50 / p95 / p99 / max.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let name = |metric: &str| format!("net.{}.{metric}", self.side);
        let mut out = vec![
            (name("connections"), self.connections.get()),
            (name("reconnects"), self.reconnects.get()),
            (name("requests"), self.requests.get()),
            (name("errors"), self.errors.get()),
            (name("bytes_in"), self.bytes_in.get()),
            (name("bytes_out"), self.bytes_out.get()),
            (name("request_micros_count"), self.request_micros.count()),
        ];
        if !self.request_micros.is_empty() {
            out.push((name("request_micros_mean"), self.request_micros.mean() as u64));
            out.push((name("request_micros_p50"), self.request_micros.value_at_quantile(0.50)));
            out.push((name("request_micros_p95"), self.request_micros.value_at_quantile(0.95)));
            out.push((name("request_micros_p99"), self.request_micros.value_at_quantile(0.99)));
            out.push((name("request_micros_max"), self.request_micros.max()));
        }
        out
    }
}
