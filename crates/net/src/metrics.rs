//! Net-layer counters, exported through the same full-disclosure channel as
//! every other subsystem (`layer.subsystem.metric` names, see `snb-obs`).

use snb_obs::{Counter, Gauge, LatencyHistogram};

/// Counters kept by one side of the wire. Both the server and the
/// [`crate::RemoteConnector`] own one; [`NetMetrics::snapshot`] renders it
/// as `net.<side>.<metric>` pairs for the counters RPC and the driver's
/// full-disclosure report.
#[derive(Debug)]
pub struct NetMetrics {
    side: &'static str,
    /// Successful dials (client) or accepted connections (server).
    pub connections: Counter,
    /// Connections reaped after the peer hung up or erred (server only).
    /// `connections - closed` is the live count — drift past
    /// `open_conns` is a connection leak.
    pub closed: Counter,
    /// Replacement connections dialed after the first (client only).
    pub reconnects: Counter,
    /// Currently open connections (server only).
    pub open_conns: Gauge,
    /// Connections accepted in the most recent accept-readiness burst — a
    /// measure of how far the listen backlog got ahead of the readiness
    /// loop (server only).
    pub accept_backlog: Gauge,
    /// Requests dispatched to the worker pool whose responses have not yet
    /// been queued for write, across all connections (server only).
    pub pipeline_depth: Gauge,
    /// Nanoseconds the event-loop thread spent working — accepting,
    /// reading, parsing, dispatching, flushing — as opposed to blocked in
    /// the poller (server only). `busy / (busy + idle)` nearing 1 means
    /// the loop thread itself, not the worker pool, is the bottleneck.
    pub loop_busy_nanos: Counter,
    /// Nanoseconds the event-loop thread spent blocked waiting for
    /// readiness (server only).
    pub loop_idle_nanos: Counter,
    /// Requests sent (client) or served (server).
    pub requests: Counter,
    /// Failed dial attempts, transport errors, and error responses.
    pub errors: Counter,
    /// Bytes read off the wire, including frame prefixes.
    pub bytes_in: Counter,
    /// Bytes written to the wire, including frame prefixes.
    pub bytes_out: Counter,
    /// Request latency in microseconds: client-observed round trip on the
    /// client side, execute-to-encode service time on the server side.
    pub request_micros: LatencyHistogram,
}

impl NetMetrics {
    /// A metrics set whose snapshot renders under `net.<side>.`.
    pub fn new(side: &'static str) -> NetMetrics {
        NetMetrics {
            side,
            connections: Counter::detached(),
            closed: Counter::detached(),
            reconnects: Counter::detached(),
            open_conns: Gauge::new(),
            accept_backlog: Gauge::new(),
            pipeline_depth: Gauge::new(),
            loop_busy_nanos: Counter::detached(),
            loop_idle_nanos: Counter::detached(),
            requests: Counter::detached(),
            errors: Counter::detached(),
            bytes_in: Counter::detached(),
            bytes_out: Counter::detached(),
            request_micros: LatencyHistogram::new(),
        }
    }

    /// Current values as `(name, value)` pairs, histogram summarized into
    /// count / mean / p50 / p95 / p99 / max.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let name = |metric: &str| format!("net.{}.{metric}", self.side);
        let mut out = vec![
            (name("connections"), self.connections.get()),
            (name("reconnects"), self.reconnects.get()),
            (name("requests"), self.requests.get()),
            (name("errors"), self.errors.get()),
            (name("bytes_in"), self.bytes_in.get()),
            (name("bytes_out"), self.bytes_out.get()),
            (name("request_micros_count"), self.request_micros.count()),
        ];
        if self.side == "server" {
            out.push((name("closed"), self.closed.get()));
            out.push((name("open_conns"), self.open_conns.get()));
            out.push((name("accept_backlog"), self.accept_backlog.get()));
            out.push((name("pipeline_depth"), self.pipeline_depth.get()));
            out.push((name("loop_busy_nanos"), self.loop_busy_nanos.get()));
            out.push((name("loop_idle_nanos"), self.loop_idle_nanos.get()));
        }
        if !self.request_micros.is_empty() {
            out.push((name("request_micros_mean"), self.request_micros.mean() as u64));
            out.push((name("request_micros_p50"), self.request_micros.value_at_quantile(0.50)));
            out.push((name("request_micros_p95"), self.request_micros.value_at_quantile(0.95)));
            out.push((name("request_micros_p99"), self.request_micros.value_at_quantile(0.99)));
            out.push((name("request_micros_max"), self.request_micros.max()));
        }
        out
    }
}
