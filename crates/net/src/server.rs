//! Blocking multi-threaded TCP server wrapping any [`Connector`].
//!
//! One accept thread, one handler thread per connection — the paper's SUTs
//! are likewise thread-per-session servers, and the driver opens at most
//! one connection per partition, so the thread count is bounded by the
//! driver's partition count plus stragglers. Shutdown is cooperative: a
//! flag flips, every registered connection is `shutdown(Both)` so blocked
//! reads return, and a throwaway self-connect unblocks `accept`.

use crate::codec::{self, Request, Response, NET_MAGIC};
use crate::metrics::NetMetrics;
use snb_core::{SnbError, SnbResult};
use snb_driver::connector::Connector;
use snb_obs::trace::{self, NameId};
use snb_obs::HistogramSnapshot;
use std::io::{Read, Write};
use std::net::ToSocketAddrs;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A running server. Dropping it shuts it down and joins every thread.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Mutex<Option<JoinHandle<()>>>,
}

struct Shared {
    connector: Arc<dyn Connector>,
    shutdown: AtomicBool,
    /// Clones of every accepted stream, so shutdown can unblock their reads.
    conns: Mutex<Vec<TcpStream>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
    metrics: NetMetrics,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving `connector`.
    pub fn bind(addr: impl ToSocketAddrs, connector: Arc<dyn Connector>) -> SnbResult<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            connector,
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            handlers: Mutex::new(Vec::new()),
            metrics: NetMetrics::new("server"),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("snb-net-accept".into())
            .spawn(move || accept_loop(listener, &accept_shared))
            .map_err(SnbError::Io)?;
        Ok(Server { shared, addr, accept: Mutex::new(Some(accept)) })
    }

    /// The bound address (with the OS-assigned port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server side's net counters.
    pub fn metrics(&self) -> &NetMetrics {
        &self.shared.metrics
    }

    /// SUT counters merged with the server's net counters — the same view
    /// the counters RPC returns.
    pub fn counters(&self) -> Vec<(String, u64)> {
        merged_counters(&self.shared)
    }

    /// SUT histogram snapshots merged with the server's request-latency
    /// histogram — the same view the counters RPC returns.
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        merged_histograms(&self.shared)
    }

    /// Stop accepting, sever every open connection, and wake blocked reads.
    /// Idempotent; does not wait for handler threads (see [`Server::join`]).
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        for conn in self.shared.conns.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        // Unblock `accept` with a throwaway connection to ourselves.
        let _ = TcpStream::connect_timeout(&wake_addr(self.addr), Duration::from_millis(250));
    }

    /// Wait for the accept thread and every handler to exit.
    pub fn join(&self) {
        if let Some(handle) = self.accept.lock().unwrap_or_else(|e| e.into_inner()).take() {
            let _ = handle.join();
        }
        let handlers =
            std::mem::take(&mut *self.shared.handlers.lock().unwrap_or_else(|e| e.into_inner()));
        for handle in handlers {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        self.join();
    }
}

/// Where to self-connect to unblock `accept`: the bound address, with
/// unspecified (`0.0.0.0` / `::`) rewritten to loopback.
fn wake_addr(addr: SocketAddr) -> SocketAddr {
    let ip = match addr.ip() {
        IpAddr::V4(ip) if ip.is_unspecified() => IpAddr::V4(Ipv4Addr::LOCALHOST),
        IpAddr::V6(ip) if ip.is_unspecified() => IpAddr::V6(Ipv6Addr::LOCALHOST),
        ip => ip,
    };
    SocketAddr::new(ip, addr.port())
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = stream.shutdown(Shutdown::Both);
            break;
        }
        shared.metrics.connections.inc();
        let _ = stream.set_nodelay(true);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().unwrap_or_else(|e| e.into_inner()).push(clone);
        }
        let handler_shared = Arc::clone(shared);
        let handler = std::thread::Builder::new().name("snb-net-conn".into()).spawn(move || {
            let _ = serve_conn(stream, &handler_shared);
        });
        if let Ok(handle) = handler {
            shared.handlers.lock().unwrap_or_else(|e| e.into_inner()).push(handle);
        }
    }
}

fn serve_conn(mut stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    // Handshake: the client speaks first; echo the magic back.
    let mut magic = [0u8; 8];
    stream.read_exact(&mut magic)?;
    if magic != NET_MAGIC {
        shared.metrics.errors.inc();
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "bad handshake magic"));
    }
    stream.write_all(&NET_MAGIC)?;

    let mut frame = Vec::new();
    let mut reply = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let n_in = match codec::read_frame(&mut stream, &mut frame) {
            Ok(n) => n,
            // EOF on the length prefix is the client hanging up cleanly;
            // anything else (including our own shutdown severing the
            // socket) just ends the connection.
            Err(_) => break,
        };
        shared.metrics.bytes_in.add(n_in as u64);
        shared.metrics.requests.inc();

        let started = Instant::now();
        let mut malformed = false;
        let response = match Request::decode(&frame) {
            Some(Request::Execute(op, ctx)) => {
                // A request carrying a trace context adopts it: spans the
                // execution records on this thread go to a capture buffer
                // and ride back on the response, where the client stitches
                // them under its wire span.
                static SPAN_EXECUTE: NameId = NameId::new("server.execute");
                if let Some((trace_id, _parent_span)) = ctx {
                    // The client's parent span id lives in the client's id
                    // space and would be ambiguous against ids allocated
                    // here, so the capture root is recorded with sentinel
                    // parent 0; the client grafts it onto its wire span
                    // after remapping (`record_foreign_rooted`).
                    trace::start_capture(trace_id, 0);
                }
                let result = {
                    let _span = ctx.is_some().then(|| trace::span(&SPAN_EXECUTE));
                    shared.connector.execute(&op)
                };
                let spans = if ctx.is_some() { trace::take_capture() } else { Vec::new() };
                match result {
                    Ok(outcome) => Response::Outcome(outcome, spans),
                    // An execution error is an application-level reply, not
                    // a connection failure: report it and keep serving.
                    Err(e) => {
                        shared.metrics.errors.inc();
                        Response::Error(e)
                    }
                }
            }
            Some(Request::Counters) => Response::Counters {
                counters: merged_counters(shared),
                histograms: merged_histograms(shared),
            },
            None => {
                shared.metrics.errors.inc();
                malformed = true;
                Response::Error(SnbError::Config("malformed request frame".into()))
            }
        };
        shared.metrics.request_micros.record(started.elapsed().as_micros() as u64);

        reply.clear();
        response.encode(&mut reply);
        let n_out = codec::write_frame(&mut stream, &reply)?;
        shared.metrics.bytes_out.add(n_out as u64);
        if malformed {
            // A frame we could not decode leaves no trustworthy stream
            // position; sever rather than serve garbage.
            break;
        }
    }
    Ok(())
}

fn merged_counters(shared: &Shared) -> Vec<(String, u64)> {
    let mut counters = shared.connector.counters();
    counters.extend(shared.metrics.snapshot());
    counters
}

fn merged_histograms(shared: &Shared) -> Vec<(String, HistogramSnapshot)> {
    let mut histograms = shared.connector.histograms();
    histograms
        .push(("net.server.request_micros".to_string(), shared.metrics.request_micros.snapshot()));
    histograms
}
