//! Nonblocking readiness-loop TCP server wrapping any [`Connector`].
//!
//! The paper's throughput metric assumes the SUT absorbs many concurrent
//! driver sessions, so the server is built for connection counts far past
//! the driver's partition count: one event-loop thread multiplexes every
//! connection through an epoll-style poller (the vendored `polling` shim),
//! and a **fixed worker pool** executes requests — thread count is
//! constant no matter how many clients connect or how hard they churn.
//!
//! Per-connection state machine: `handshake → frame-read → execute →
//! frame-write`. The handshake magic negotiates the protocol version per
//! connection: v2 peers get the synchronous one-request-at-a-time contract
//! they expect; v3 peers may **pipeline** — every v3 frame carries a `u64`
//! correlation id, requests fan out to the worker pool, and responses are
//! written back in completion order with their ids, so out-of-order
//! completion is fine.
//!
//! Flow control is bounded end to end: per-connection write queues have a
//! byte limit, and a connection over its limit (or over its pipeline cap)
//! stops being read — **backpressure** instead of unbounded buffering.
//! Connection state lives in a slab keyed by poller token and is reaped
//! the moment a connection dies, so accept/close churn cannot leak fds,
//! buffers, or threads (the leak the old thread-per-connection server had:
//! it pushed every stream clone and `JoinHandle` into vectors that only
//! drained at shutdown).

use crate::codec::{self, protocol_version, Request, Response, MAX_FRAME};
use crate::metrics::NetMetrics;
use snb_core::{SnbError, SnbResult};
use snb_driver::connector::Connector;
use snb_obs::trace::{self, NameId, SpanData};
use snb_obs::HistogramSnapshot;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sizing knobs for the readiness loop and worker pool.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing requests. `0` = one per hardware thread,
    /// clamped to `[2, 8]`.
    pub workers: usize,
    /// Maximum requests in flight per v3 connection (v2 connections are
    /// pinned to 1 to preserve their synchronous response order). Parsed
    /// requests past this cap wait in the connection's pending queue, and
    /// the connection stops being read while the queue is full.
    pub max_pipeline: usize,
    /// Per-connection write-queue byte limit. A connection over the limit
    /// gets no new dispatches and is not read until the queue drains below
    /// it — slow readers stall themselves, not the server.
    pub write_buf_limit: usize,
    /// This server's shard index (0-based). Single-process deployments
    /// keep the default `0/1`.
    pub shard: u32,
    /// Total shards in the deployment this server belongs to. Reported on
    /// the Gct RPC and as `net.server.shard_index`/`shard_count` counters
    /// so a sharded run's full disclosure identifies every participant.
    pub shards: u32,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig { workers: 0, max_pipeline: 64, write_buf_limit: 4 << 20, shard: 0, shards: 1 }
    }
}

impl ServerConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).clamp(2, 8)
    }
}

/// A running server. Dropping it shuts it down and joins every thread.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    event_loop: Mutex<Option<JoinHandle<()>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// One request handed to the worker pool. `token` names the connection
/// (slot + generation) so a completion for a connection that died in the
/// meantime is recognized and dropped instead of hitting a reused slot.
struct Job {
    token: u64,
    corr: Option<u64>,
    request: Request,
}

/// A fully framed response ready to be queued on its connection.
struct Completion {
    token: u64,
    frame: Vec<u8>,
}

struct Shared {
    connector: Arc<dyn Connector>,
    config: ServerConfig,
    shutdown: AtomicBool,
    poller: polling::Poller,
    jobs: Mutex<VecDeque<Job>>,
    jobs_ready: Condvar,
    completions: Mutex<Vec<Completion>>,
    metrics: NetMetrics,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving `connector`
    /// with the default [`ServerConfig`].
    pub fn bind(addr: impl ToSocketAddrs, connector: Arc<dyn Connector>) -> SnbResult<Server> {
        Server::bind_with_config(addr, connector, ServerConfig::default())
    }

    /// Bind with explicit readiness-loop / worker-pool sizing.
    pub fn bind_with_config(
        addr: impl ToSocketAddrs,
        connector: Arc<dyn Connector>,
        config: ServerConfig,
    ) -> SnbResult<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let poller = polling::Poller::new()?;
        poller.add(&listener, polling::Event::readable(LISTENER_KEY))?;
        let worker_count = config.effective_workers();
        let shared = Arc::new(Shared {
            connector,
            config,
            shutdown: AtomicBool::new(false),
            poller,
            jobs: Mutex::new(VecDeque::new()),
            jobs_ready: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            metrics: NetMetrics::new("server"),
        });

        let mut workers = Vec::with_capacity(worker_count);
        for i in 0..worker_count {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("snb-net-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(SnbError::Io)?,
            );
        }
        let loop_shared = Arc::clone(&shared);
        let event_loop = std::thread::Builder::new()
            .name("snb-net-events".into())
            .spawn(move || EventLoop::new(listener, loop_shared).run())
            .map_err(SnbError::Io)?;
        Ok(Server {
            shared,
            addr,
            event_loop: Mutex::new(Some(event_loop)),
            workers: Mutex::new(workers),
        })
    }

    /// The bound address (with the OS-assigned port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server side's net counters.
    pub fn metrics(&self) -> &NetMetrics {
        &self.shared.metrics
    }

    /// SUT counters merged with the server's net counters — the same view
    /// the counters RPC returns.
    pub fn counters(&self) -> Vec<(String, u64)> {
        merged_counters(&self.shared)
    }

    /// SUT histogram snapshots merged with the server's request-latency
    /// histogram — the same view the counters RPC returns.
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        merged_histograms(&self.shared)
    }

    /// Stop accepting, sever every open connection, and wake every thread.
    /// Idempotent; does not wait for threads (see [`Server::join`]).
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // The event loop owns every socket; waking it is enough — it sees
        // the flag, drops the listener and all connections, and exits.
        let _ = self.shared.poller.notify();
        self.shared.jobs_ready.notify_all();
    }

    /// Wait for the event loop and every worker to exit.
    pub fn join(&self) {
        if let Some(handle) = self.event_loop.lock().unwrap_or_else(|e| e.into_inner()).take() {
            let _ = handle.join();
        }
        let workers = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for handle in workers {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        self.join();
    }
}

// ---- worker pool ----

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut jobs = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = jobs.pop_front() {
                    break job;
                }
                jobs = shared
                    .jobs_ready
                    .wait_timeout(jobs, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        };
        let frame = serve_request(shared, job.corr, job.request);
        shared
            .completions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Completion { token: job.token, frame });
        let _ = shared.poller.notify();
    }
}

/// Clears the thread's trace-capture buffer on **every** exit path. An
/// early return or panic between `start_capture` and `take_capture` must
/// not leave the buffer armed, or a later request handled by this worker
/// would absorb the leftover spans into its own trace.
struct CaptureGuard {
    armed: bool,
}

impl CaptureGuard {
    fn start(ctx: Option<(u64, u64)>) -> CaptureGuard {
        // The client's parent span id lives in the client's id space and
        // would be ambiguous against ids allocated here, so the capture
        // root is recorded with sentinel parent 0; the client grafts it
        // onto its wire span after remapping (`record_foreign_rooted`).
        if let Some((trace_id, _parent_span)) = ctx {
            trace::start_capture(trace_id, 0);
            CaptureGuard { armed: true }
        } else {
            CaptureGuard { armed: false }
        }
    }

    fn take(mut self) -> Vec<SpanData> {
        self.armed = false;
        trace::take_capture()
    }
}

impl Drop for CaptureGuard {
    fn drop(&mut self) {
        if self.armed {
            let _ = trace::take_capture();
        }
    }
}

/// Execute one request and return its fully framed response
/// (`len | [corr] | payload`). Never panics outward: a panicking connector
/// becomes an error response, and the worker lives on.
fn serve_request(shared: &Arc<Shared>, corr: Option<u64>, request: Request) -> Vec<u8> {
    shared.metrics.requests.inc();
    let started = Instant::now();
    let response = match request {
        Request::Execute(op, ctx) => {
            // A request carrying a trace context adopts it: spans the
            // execution records on this thread go to a capture buffer and
            // ride back on the response, where the client stitches them
            // under its wire span.
            static SPAN_EXECUTE: NameId = NameId::new("server.execute");
            let capture = CaptureGuard::start(ctx);
            let result = catch_unwind(AssertUnwindSafe(|| {
                let _span = ctx.is_some().then(|| trace::span(&SPAN_EXECUTE));
                shared.connector.execute(&op)
            }));
            let spans = capture.take();
            match result {
                Ok(Ok(outcome)) => Response::Outcome(outcome, spans),
                // An execution error is an application-level reply, not a
                // connection failure: report it and keep serving.
                Ok(Err(e)) => {
                    shared.metrics.errors.inc();
                    Response::Error(e)
                }
                Err(_) => {
                    shared.metrics.errors.inc();
                    Response::Error(SnbError::Config("SUT panicked during execution".into()))
                }
            }
        }
        Request::Counters => Response::Counters {
            counters: merged_counters(shared),
            histograms: merged_histograms(shared),
        },
        Request::Partial(op) => {
            match catch_unwind(AssertUnwindSafe(|| shared.connector.execute_partial(&op))) {
                Ok(Ok(out)) => {
                    Response::Partial(out.partial, out.seed.map(|(m, date)| (m.raw(), date.0)))
                }
                Ok(Err(e)) => {
                    shared.metrics.errors.inc();
                    Response::Error(e)
                }
                Err(_) => {
                    shared.metrics.errors.inc();
                    Response::Error(SnbError::Config("SUT panicked during partial".into()))
                }
            }
        }
        Request::Gct => Response::Gct {
            shard: shared.config.shard,
            shards: shared.config.shards,
            horizon: shared.connector.gct_horizon(),
        },
    };
    let frame = frame_response(corr, &response);
    shared.metrics.request_micros.record(started.elapsed().as_micros() as u64);
    frame
}

/// Frame a response: 4-byte length prefix, the v3 correlation id when the
/// connection negotiated one, then the encoded response.
fn frame_response(corr: Option<u64>, response: &Response) -> Vec<u8> {
    let mut frame = vec![0u8; 4];
    if let Some(corr) = corr {
        codec::put_corr(&mut frame, corr);
    }
    response.encode(&mut frame);
    let len = (frame.len() - 4) as u32;
    frame[..4].copy_from_slice(&len.to_le_bytes());
    frame
}

fn merged_counters(shared: &Shared) -> Vec<(String, u64)> {
    let mut counters = shared.connector.counters();
    counters.extend(shared.metrics.snapshot());
    // Shard identity rides the ordinary counters channel so a sharded
    // run's full disclosure names every participant without a codec
    // change (old clients simply see two more counters).
    counters.push(("net.server.shard_index".to_string(), shared.config.shard as u64));
    counters.push(("net.server.shard_count".to_string(), shared.config.shards as u64));
    counters
}

fn merged_histograms(shared: &Shared) -> Vec<(String, HistogramSnapshot)> {
    let mut histograms = shared.connector.histograms();
    histograms
        .push(("net.server.request_micros".to_string(), shared.metrics.request_micros.snapshot()));
    histograms
}

// ---- event loop ----

const LISTENER_KEY: usize = 0;
/// Connection keys are `slot + KEY_BASE` so slot 0 never collides with the
/// listener's key.
const KEY_BASE: usize = 1;

/// How long `wait` may block with nothing happening. Shutdown and
/// completions arrive via `poller.notify`, so this is only a lost-wakeup
/// backstop, not a polling interval.
const WAIT_BACKSTOP: Duration = Duration::from_millis(250);

/// Read chunk size per `read` call; reads repeat until `WouldBlock`.
const READ_CHUNK: usize = 16 * 1024;

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    gen: u32,
    /// Negotiated protocol version; 0 while the handshake is incomplete.
    version: u8,
    /// Handshake bytes accumulated so far (the magic may arrive split).
    hs: [u8; 8],
    hs_len: usize,
    /// Inbound bytes: the unparsed window is `rbuf[rpos..]`.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Outbound bytes: the unflushed window is `wbuf[wpos..]`.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Parsed requests waiting for a worker slot (pipeline cap/backpressure).
    pending: VecDeque<(Option<u64>, Request)>,
    /// Requests dispatched to the pool whose responses are still owed.
    in_flight: usize,
    /// The peer hung up or sent garbage: read no more, finish what is owed,
    /// then close.
    read_closed: bool,
}

impl Conn {
    fn new(stream: TcpStream, gen: u32) -> Conn {
        Conn {
            stream,
            gen,
            version: 0,
            hs: [0u8; 8],
            hs_len: 0,
            rbuf: Vec::with_capacity(8 * 1024),
            rpos: 0,
            wbuf: Vec::new(),
            wpos: 0,
            pending: VecDeque::new(),
            in_flight: 0,
            read_closed: false,
        }
    }

    fn token(&self, slot: usize) -> u64 {
        ((self.gen as u64) << 32) | slot as u64
    }

    fn unflushed(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Everything owed has been delivered and the peer is gone.
    fn drained(&self) -> bool {
        self.read_closed && self.in_flight == 0 && self.pending.is_empty() && self.unflushed() == 0
    }
}

struct EventLoop {
    listener: TcpListener,
    shared: Arc<Shared>,
    conns: Vec<Option<Conn>>,
    /// Reusable slots; `gens[slot]` bumps on every close so stale worker
    /// completions can never reach a recycled connection.
    free: Vec<usize>,
    gens: Vec<u32>,
}

impl EventLoop {
    fn new(listener: TcpListener, shared: Arc<Shared>) -> EventLoop {
        EventLoop { listener, shared, conns: Vec::new(), free: Vec::new(), gens: Vec::new() }
    }

    fn run(mut self) {
        let mut events = Vec::new();
        loop {
            events.clear();
            let wait_started = Instant::now();
            if self.shared.poller.wait(&mut events, Some(WAIT_BACKSTOP)).is_err() {
                // A persistently failing poller must not become a busy
                // loop; back off and recheck shutdown.
                std::thread::sleep(Duration::from_millis(10));
            }
            // Busy/idle split of the loop thread: `wait` time is idle,
            // everything else (accept, read, parse, dispatch, flush) is
            // busy. busy/(busy+idle) approaching 1 means the single loop
            // thread — not the worker pool — is the bottleneck.
            let busy_started = Instant::now();
            self.shared
                .metrics
                .loop_idle_nanos
                .add(busy_started.duration_since(wait_started).as_nanos() as u64);
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            self.drain_completions();
            for &event in &events {
                if event.key == LISTENER_KEY {
                    self.accept_burst();
                } else {
                    self.handle_conn_event(event.key - KEY_BASE, event);
                }
            }
            self.shared.metrics.loop_busy_nanos.add(busy_started.elapsed().as_nanos() as u64);
        }
        // Teardown: closing every fd sends FIN/RST, so blocked client
        // reads fail promptly; workers exit via the shutdown flag.
        for slot in 0..self.conns.len() {
            self.close_conn(slot);
        }
        self.shared.jobs_ready.notify_all();
    }

    fn accept_burst(&mut self) {
        let mut burst = 0u64;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    burst += 1;
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue; // never serve a stream that would block the loop
                    }
                    self.shared.metrics.connections.inc();
                    self.shared.metrics.open_conns.inc();
                    let slot = match self.free.pop() {
                        Some(slot) => slot,
                        None => {
                            self.conns.push(None);
                            self.gens.push(0);
                            self.conns.len() - 1
                        }
                    };
                    let conn = Conn::new(stream, self.gens[slot]);
                    if self
                        .shared
                        .poller
                        .add(&conn.stream, polling::Event::readable(slot + KEY_BASE))
                        .is_err()
                    {
                        self.shared.metrics.closed.inc();
                        self.shared.metrics.open_conns.dec();
                        self.gens[slot] = self.gens[slot].wrapping_add(1);
                        self.free.push(slot);
                        continue;
                    }
                    self.conns[slot] = Some(conn);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Transient accept errors (EMFILE, aborted connections):
                // drop this readiness round; the re-arm below retries.
                Err(_) => break,
            }
        }
        self.shared.metrics.accept_backlog.set(burst);
        let _ = self.shared.poller.modify(&self.listener, polling::Event::readable(LISTENER_KEY));
    }

    fn handle_conn_event(&mut self, slot: usize, event: polling::Event) {
        if self.conns.get(slot).is_none_or(Option::is_none) {
            return; // closed earlier this iteration
        }
        if event.readable && !self.read_into_conn(slot) {
            return; // hard error: connection already closed
        }
        if !self.parse_frames(slot) {
            return;
        }
        self.after_progress(slot); // dispatches newly parsed requests
    }

    /// Pull everything the socket has into `rbuf`. Returns false when the
    /// connection was closed on a hard error.
    fn read_into_conn(&mut self, slot: usize) -> bool {
        let conn = self.conns[slot].as_mut().expect("checked by caller");
        if conn.read_closed {
            return true;
        }
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => conn.rbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.shared.metrics.errors.inc();
                    self.close_conn(slot);
                    return false;
                }
            }
        }
        true
    }

    /// Parse the handshake and every complete frame out of `rbuf` into the
    /// pending queue. Returns false when the connection was closed.
    fn parse_frames(&mut self, slot: usize) -> bool {
        let conn = self.conns[slot].as_mut().expect("checked by caller");

        // Handshake: the client speaks first; echo the magic back.
        if conn.version == 0 {
            let window = conn.rbuf.len() - conn.rpos;
            let take = (8 - conn.hs_len).min(window);
            conn.hs[conn.hs_len..conn.hs_len + take]
                .copy_from_slice(&conn.rbuf[conn.rpos..conn.rpos + take]);
            conn.hs_len += take;
            conn.rpos += take;
            if conn.hs_len < 8 {
                return true; // wait for the rest of the magic
            }
            match protocol_version(&conn.hs) {
                Some(version) => {
                    conn.version = version;
                    let echo = conn.hs;
                    conn.wbuf.extend_from_slice(&echo);
                    self.shared.metrics.bytes_in.add(8);
                    self.shared.metrics.bytes_out.add(8);
                }
                None => {
                    self.shared.metrics.errors.inc();
                    self.close_conn(slot);
                    return false;
                }
            }
        }

        loop {
            let conn = self.conns[slot].as_mut().expect("checked by caller");
            let window = &conn.rbuf[conn.rpos..];
            if window.len() < 4 {
                break;
            }
            let len = u32::from_le_bytes(window[..4].try_into().expect("4 bytes")) as usize;
            if len == 0 || len > MAX_FRAME {
                // No trustworthy stream position remains; sever.
                self.shared.metrics.errors.inc();
                self.close_conn(slot);
                return false;
            }
            if window.len() < 4 + len {
                break; // frame still arriving
            }
            let payload = &window[4..4 + len];
            let (corr, body) = if conn.version >= 3 {
                match codec::take_corr(payload) {
                    Some((corr, body)) => (Some(corr), body),
                    None => (None, &[][..]), // undecodably short; falls out below
                }
            } else {
                (None, payload)
            };
            let decoded = Request::decode(body);
            conn.rpos += 4 + len;
            self.shared.metrics.bytes_in.add((4 + len) as u64);
            match decoded {
                Some(request) => conn.pending.push_back((corr, request)),
                None => {
                    // A frame we could not decode leaves no trustworthy
                    // stream position; report once, then sever after the
                    // reply (and anything already owed) is flushed.
                    self.shared.metrics.errors.inc();
                    let reply = frame_response(
                        corr.or(Some(0)).filter(|_| conn.version >= 3),
                        &Response::Error(SnbError::Config("malformed request frame".into())),
                    );
                    self.shared.metrics.bytes_out.add(reply.len() as u64);
                    conn.wbuf.extend_from_slice(&reply);
                    conn.pending.clear();
                    conn.read_closed = true;
                    break;
                }
            }
        }

        // Compact the consumed prefix once it dominates the buffer.
        let conn = self.conns[slot].as_mut().expect("checked by caller");
        if conn.rpos == conn.rbuf.len() {
            conn.rbuf.clear();
            conn.rpos = 0;
        } else if conn.rpos > 64 * 1024 {
            conn.rbuf.drain(..conn.rpos);
            conn.rpos = 0;
        }
        true
    }

    /// Move parsed requests to the worker pool, bounded by the pipeline
    /// cap (1 for v2: its responses must come back in request order) and
    /// by write-queue backpressure.
    fn dispatch(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let cap = if conn.version >= 3 { self.shared.config.max_pipeline } else { 1 };
        let mut dispatched = false;
        while conn.in_flight < cap
            && !conn.pending.is_empty()
            && conn.unflushed() < self.shared.config.write_buf_limit
        {
            let (corr, request) = conn.pending.pop_front().expect("nonempty");
            conn.in_flight += 1;
            self.shared.metrics.pipeline_depth.inc();
            self.shared.jobs.lock().unwrap_or_else(|e| e.into_inner()).push_back(Job {
                token: conn.token(slot),
                corr,
                request,
            });
            dispatched = true;
        }
        if dispatched {
            self.shared.jobs_ready.notify_all();
        }
    }

    /// Append completed responses to their connections' write queues and
    /// keep those connections moving.
    fn drain_completions(&mut self) {
        let completions =
            std::mem::take(&mut *self.shared.completions.lock().unwrap_or_else(|e| e.into_inner()));
        for completion in completions {
            let slot = (completion.token & 0xffff_ffff) as usize;
            let gen = (completion.token >> 32) as u32;
            self.shared.metrics.pipeline_depth.dec();
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                continue; // connection died while the request executed
            };
            if conn.gen != gen {
                continue; // slot recycled: response belongs to a dead peer
            }
            conn.in_flight -= 1;
            self.shared.metrics.bytes_out.add(completion.frame.len() as u64);
            conn.wbuf.extend_from_slice(&completion.frame);
            self.after_progress(slot);
        }
    }

    /// Flush what can be written, dispatch anything the flush unblocked,
    /// then either close a drained connection or re-arm its poller
    /// interest to match what it still needs.
    fn after_progress(&mut self, slot: usize) {
        if !self.flush(slot) {
            return;
        }
        // A drained write queue may clear backpressure on the pending
        // queue: dispatch here, or a window-limited client waiting for
        // responses before sending more would deadlock.
        self.dispatch(slot);
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.drained() {
            self.close_conn(slot);
            return;
        }
        let conn = self.conns[slot].as_ref().expect("just checked");
        let want_read = !conn.read_closed
            && conn.pending.len() < self.shared.config.max_pipeline
            && conn.unflushed() < self.shared.config.write_buf_limit;
        let want_write = conn.unflushed() > 0;
        let key = slot + KEY_BASE;
        let interest = match (want_read, want_write) {
            (true, true) => polling::Event::all(key),
            (true, false) => polling::Event::readable(key),
            (false, true) => polling::Event::writable(key),
            // Fully backpressured or half-closed with work in flight:
            // completions re-arm via after_progress.
            (false, false) => polling::Event::none(key),
        };
        if self.shared.poller.modify(&conn.stream, interest).is_err() {
            self.close_conn(slot);
        }
    }

    /// Write as much of the queue as the socket accepts. Returns false
    /// when the connection was closed on a hard error.
    fn flush(&mut self, slot: usize) -> bool {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return false;
        };
        while conn.unflushed() > 0 {
            match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => {
                    self.shared.metrics.errors.inc();
                    self.close_conn(slot);
                    return false;
                }
                Ok(n) => conn.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.shared.metrics.errors.inc();
                    self.close_conn(slot);
                    return false;
                }
            }
        }
        if conn.wpos == conn.wbuf.len() {
            conn.wbuf.clear();
            conn.wpos = 0;
        } else if conn.wpos > 256 * 1024 {
            conn.wbuf.drain(..conn.wpos);
            conn.wpos = 0;
        }
        true
    }

    /// Reap one connection *now*: poller deregistration, fd close (via
    /// drop), slot recycled under a bumped generation. This runs the
    /// moment a connection dies — not at shutdown — so churn cannot
    /// accumulate state.
    fn close_conn(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::take) else {
            return;
        };
        let _ = self.shared.poller.delete(&conn.stream);
        self.shared.metrics.closed.inc();
        self.shared.metrics.open_conns.dec();
        self.gens[slot] = self.gens[slot].wrapping_add(1);
        self.free.push(slot);
        // In-flight jobs for this conn finish in the pool and are dropped
        // by the generation check in drain_completions; `pipeline_depth`
        // is decremented there, so the gauge stays balanced.
        drop(conn);
    }
}
