//! Wire encoding: length-prefixed binary frames over a byte stream.
//!
//! One frame is `u32 little-endian payload length | payload`. A connection
//! opens with an 8-byte magic handshake ([`NET_MAGIC`] for protocol v2,
//! [`NET_MAGIC_V3`] for v3) sent by the client and echoed by the server;
//! after that the client sends [`Request`] frames and reads one
//! [`Response`] frame per request. Update operations reuse the WAL's
//! versioned `UpdateOp` codec ([`snb_store::encode_update`]) so the
//! workspace has a single binary encoding for mutations, on disk and on the
//! wire; query parameters are encoded field-by-field here.
//!
//! v2 is synchronous (one outstanding request per connection); v3 frames
//! carry a `u64` correlation id ahead of the v2-shaped payload
//! ([`put_corr`] / [`take_corr`]) so a client may keep several requests in
//! flight per connection and match responses arriving out of order. The
//! server negotiates per connection off the handshake magic, so old v2
//! clients keep working unchanged.

use snb_core::time::SimTime;
use snb_core::{MessageId, PersonId, SnbError};
use snb_driver::connector::{OpOutcome, Operation};
use snb_obs::trace::SpanData;
use snb_obs::HistogramSnapshot;
use snb_queries::params::{
    ComplexQuery, Q10Params, Q11Params, Q12Params, Q13Params, Q14Params, Q1Params, Q2Params,
    Q3Params, Q4Params, Q5Params, Q6Params, Q7Params, Q8Params, Q9Params, ShortQuery,
};
use snb_queries::sharded::{GroupRow, MergedRow, Partial};
use std::io::{self, Read, Write};

/// v2 handshake magic, sent by the client and echoed by the server. The
/// digit versions the protocol: v2 added trace-context propagation on
/// `Execute`, piggybacked server spans on `Outcome`, and histogram
/// snapshots on `Counters` — all incompatible with v1, hence the bump.
pub const NET_MAGIC: [u8; 8] = *b"SNBNET2\0";

/// v3 handshake magic. v3 framing prefixes every request and response
/// payload with a `u64` little-endian **correlation id** so a client may
/// pipeline several requests on one connection and match responses that
/// the server completes out of order. The server echoes whichever magic
/// the client sent (negotiation: a v2 client gets v2 framing and strict
/// one-at-a-time semantics; a v3 client gets pipelining).
pub const NET_MAGIC_V3: [u8; 8] = *b"SNBNET3\0";

/// The wire protocol version negotiated by a handshake magic, or `None`
/// for an unknown peer.
pub fn protocol_version(magic: &[u8; 8]) -> Option<u8> {
    match *magic {
        NET_MAGIC => Some(2),
        NET_MAGIC_V3 => Some(3),
        _ => None,
    }
}

/// Prepend a v3 correlation id to a frame payload under construction.
pub fn put_corr(buf: &mut Vec<u8>, corr: u64) {
    put_u64(buf, corr);
}

/// Split a v3 frame payload into its correlation id and the v2-shaped
/// message bytes that follow it.
pub fn take_corr(p: &[u8]) -> Option<(u64, &[u8])> {
    let (bytes, rest) = p.split_first_chunk::<8>()?;
    Some((u64::from_le_bytes(*bytes), rest))
}

/// Maximum accepted frame payload (16 MiB): large enough for any counters
/// dump, small enough that a corrupt length prefix cannot OOM the peer.
pub const MAX_FRAME: usize = 1 << 24;

// Request tags.
const REQ_EXECUTE: u8 = 1;
const REQ_COUNTERS: u8 = 2;
const REQ_PARTIAL: u8 = 3;
const REQ_GCT: u8 = 4;
// Response tags.
const RESP_OUTCOME: u8 = 1;
const RESP_ERROR: u8 = 2;
const RESP_COUNTERS: u8 = 3;
const RESP_PARTIAL: u8 = 4;
const RESP_GCT: u8 = 5;
// Partial class tags.
const PARTIAL_TOP: u8 = 1;
const PARTIAL_GROUPS: u8 = 2;
// Operation class tags.
const OP_UPDATE: u8 = 1;
const OP_COMPLEX: u8 = 2;
const OP_SHORT: u8 = 3;
// Error kind tags.
const ERR_NOT_FOUND: u8 = 0;
const ERR_CONSTRAINT: u8 = 1;
const ERR_CONFIG: u8 = 2;
const ERR_IO: u8 = 3;

/// One client-to-server message. (The size skew between variants is fine:
/// requests are built transiently for encode/decode, never stored in bulk.)
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum Request {
    /// Execute one operation and return its outcome. The optional
    /// `(trace id, parent span id)` pair propagates the client's trace
    /// context so the server can capture its execution spans under the
    /// client's wire span.
    Execute(Operation, Option<(u64, u64)>),
    /// Return the SUT's counters merged with the server's net counters.
    Counters,
    /// Execute the shard-local half of a scatterable read and return its
    /// partial result for a client-side merge (`snb_queries::sharded`).
    Partial(Operation),
    /// Return this shard's identity and replicated-update horizon (the
    /// GCT dependency-visibility probe — cheap, no execution).
    Gct,
}

/// One server-to-client message.
#[derive(Debug)]
pub enum Response {
    /// The operation executed; here is what it returned, plus any server
    /// spans captured for the request's trace context (empty when the
    /// request carried none).
    Outcome(OpOutcome, Vec<SpanData>),
    /// The operation (or the request itself) failed.
    Error(SnbError),
    /// Counters dump plus full histogram snapshots, so a remote run's
    /// disclosure equals an in-process run's.
    Counters { counters: Vec<(String, u64)>, histograms: Vec<(String, HistogramSnapshot)> },
    /// A shard's partial answer to a scatterable read, plus its
    /// shard-local walk-seed candidate (message id, creation date millis).
    Partial(Partial, Option<(u64, i64)>),
    /// Shard identity plus the replicated-update horizon (millis).
    Gct {
        /// This server's shard index.
        shard: u32,
        /// Total shards in the deployment the server was launched for.
        shards: u32,
        /// Max creation date of applied AddPerson/AddFriendship updates.
        horizon: i64,
    },
}

impl Request {
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Request::Execute(op, trace) => encode_execute(op, *trace, buf),
            Request::Counters => buf.push(REQ_COUNTERS),
            Request::Partial(op) => encode_partial_req(op, buf),
            Request::Gct => buf.push(REQ_GCT),
        }
    }

    pub fn decode(mut p: &[u8]) -> Option<Request> {
        let req = match get_u8(&mut p)? {
            REQ_EXECUTE => {
                let trace = match get_u8(&mut p)? {
                    0 => None,
                    1 => Some((get_u64(&mut p)?, get_u64(&mut p)?)),
                    _ => return None,
                };
                Request::Execute(decode_operation(&mut p)?, trace)
            }
            REQ_COUNTERS => Request::Counters,
            REQ_PARTIAL => Request::Partial(decode_operation(&mut p)?),
            REQ_GCT => Request::Gct,
            _ => return None,
        };
        p.is_empty().then_some(req)
    }
}

/// Encode a `Partial` request from a borrowed operation (the sharded
/// client's scatter path — avoids cloning into a [`Request`]).
pub fn encode_partial_req(op: &Operation, buf: &mut Vec<u8>) {
    buf.push(REQ_PARTIAL);
    encode_operation(op, buf);
}

/// Encode an `Execute` request from a borrowed operation (the client's hot
/// path — avoids cloning the operation into a [`Request`]).
pub fn encode_execute(op: &Operation, trace: Option<(u64, u64)>, buf: &mut Vec<u8>) {
    buf.push(REQ_EXECUTE);
    match trace {
        Some((trace_id, parent_span)) => {
            buf.push(1);
            put_u64(buf, trace_id);
            put_u64(buf, parent_span);
        }
        None => buf.push(0),
    }
    encode_operation(op, buf);
}

impl Response {
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Response::Outcome(out, spans) => {
                buf.push(RESP_OUTCOME);
                put_u64(buf, out.rows as u64);
                put_opt_u64(buf, out.seed_person.map(|p| p.0));
                put_opt_u64(buf, out.seed_message.map(|m| m.0));
                put_spans(buf, spans);
            }
            Response::Error(e) => {
                buf.push(RESP_ERROR);
                encode_error(e, buf);
            }
            Response::Counters { counters, histograms } => {
                buf.push(RESP_COUNTERS);
                put_u64(buf, counters.len() as u64);
                for (name, value) in counters {
                    put_str(buf, name);
                    put_u64(buf, *value);
                }
                put_u64(buf, histograms.len() as u64);
                for (name, hist) in histograms {
                    put_str(buf, name);
                    put_hist(buf, hist);
                }
            }
            Response::Partial(partial, seed) => {
                buf.push(RESP_PARTIAL);
                put_partial(buf, partial);
                match seed {
                    Some((m, date)) => {
                        buf.push(1);
                        put_u64(buf, *m);
                        put_i64(buf, *date);
                    }
                    None => buf.push(0),
                }
            }
            Response::Gct { shard, shards, horizon } => {
                buf.push(RESP_GCT);
                put_u64(buf, *shard as u64);
                put_u64(buf, *shards as u64);
                put_i64(buf, *horizon);
            }
        }
    }

    pub fn decode(mut p: &[u8]) -> Option<Response> {
        let resp = match get_u8(&mut p)? {
            RESP_OUTCOME => {
                let rows = get_u64(&mut p)? as usize;
                let seed_person = get_opt_u64(&mut p)?.map(PersonId);
                let seed_message = get_opt_u64(&mut p)?.map(MessageId);
                let spans = get_spans(&mut p)?;
                Response::Outcome(OpOutcome { rows, seed_person, seed_message }, spans)
            }
            RESP_ERROR => Response::Error(decode_error(&mut p)?),
            RESP_COUNTERS => {
                let n = get_u64(&mut p)? as usize;
                if n > MAX_FRAME / 9 {
                    return None; // each entry costs ≥ 9 bytes; length is a lie
                }
                let mut counters = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = get_str(&mut p)?;
                    let value = get_u64(&mut p)?;
                    counters.push((name, value));
                }
                let n = get_u64(&mut p)? as usize;
                if n > MAX_FRAME / 33 {
                    return None; // name + 3 header words + count ≥ 33 bytes
                }
                let mut histograms = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = get_str(&mut p)?;
                    let hist = get_hist(&mut p)?;
                    histograms.push((name, hist));
                }
                Response::Counters { counters, histograms }
            }
            RESP_PARTIAL => {
                let partial = get_partial(&mut p)?;
                let seed = match get_u8(&mut p)? {
                    0 => None,
                    1 => Some((get_u64(&mut p)?, get_i64(&mut p)?)),
                    _ => return None,
                };
                Response::Partial(partial, seed)
            }
            RESP_GCT => Response::Gct {
                shard: get_u64(&mut p)? as u32,
                shards: get_u64(&mut p)? as u32,
                horizon: get_i64(&mut p)?,
            },
            _ => return None,
        };
        p.is_empty().then_some(resp)
    }
}

// ---- partials ----

/// Partial results ride the wire structurally: merged rows keep their
/// explicit sort keys, group rows their additive measures. All length
/// prefixes are sanity-bounded against [`MAX_FRAME`] like every other
/// variable-length decode here.
fn put_partial(buf: &mut Vec<u8>, partial: &Partial) {
    match partial {
        Partial::Top { limit, rows } => {
            buf.push(PARTIAL_TOP);
            put_u64(buf, *limit as u64);
            put_u64(buf, rows.len() as u64);
            for row in rows {
                for k in row.key {
                    put_i64(buf, k);
                }
                put_u64(buf, row.cols.len() as u64);
                for &c in &row.cols {
                    put_i64(buf, c);
                }
                put_u64(buf, row.text.len() as u64);
                for t in &row.text {
                    put_str(buf, t);
                }
            }
        }
        Partial::Groups { rows, pairs, paths } => {
            buf.push(PARTIAL_GROUPS);
            put_u64(buf, rows.len() as u64);
            for r in rows {
                put_u64(buf, r.k1);
                put_u64(buf, r.k2);
                put_i64(buf, r.a);
                put_i64(buf, r.b);
            }
            put_u64(buf, pairs.len() as u64);
            for &(a, b) in pairs {
                put_u64(buf, a);
                put_u64(buf, b);
            }
            put_u64(buf, paths.len() as u64);
            for path in paths {
                put_u64(buf, path.len() as u64);
                for &p in path {
                    put_u64(buf, p);
                }
            }
        }
    }
}

fn get_partial(p: &mut &[u8]) -> Option<Partial> {
    match get_u8(p)? {
        PARTIAL_TOP => {
            let limit = get_u64(p)? as u32;
            let n = get_u64(p)? as usize;
            if n > MAX_FRAME / 40 {
                return None; // 3 key words + 2 lengths minimum per row
            }
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                let key = [get_i64(p)?, get_i64(p)?, get_i64(p)?];
                let nc = get_u64(p)? as usize;
                if nc > p.len() / 8 {
                    return None;
                }
                let mut cols = Vec::with_capacity(nc);
                for _ in 0..nc {
                    cols.push(get_i64(p)?);
                }
                let nt = get_u64(p)? as usize;
                if nt > p.len() / 8 {
                    return None;
                }
                let mut text = Vec::with_capacity(nt);
                for _ in 0..nt {
                    text.push(get_str(p)?);
                }
                rows.push(MergedRow { key, cols, text });
            }
            Some(Partial::Top { limit, rows })
        }
        PARTIAL_GROUPS => {
            let n = get_u64(p)? as usize;
            if n > MAX_FRAME / 32 {
                return None; // 4 words per group row
            }
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push(GroupRow {
                    k1: get_u64(p)?,
                    k2: get_u64(p)?,
                    a: get_i64(p)?,
                    b: get_i64(p)?,
                });
            }
            let n = get_u64(p)? as usize;
            if n > MAX_FRAME / 16 {
                return None; // 2 words per pair
            }
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                pairs.push((get_u64(p)?, get_u64(p)?));
            }
            let n = get_u64(p)? as usize;
            if n > MAX_FRAME / 8 {
                return None; // 1 length word minimum per path
            }
            let mut paths = Vec::with_capacity(n);
            for _ in 0..n {
                let len = get_u64(p)? as usize;
                if len > p.len() / 8 {
                    return None;
                }
                let mut path = Vec::with_capacity(len);
                for _ in 0..len {
                    path.push(get_u64(p)?);
                }
                paths.push(path);
            }
            Some(Partial::Groups { rows, pairs, paths })
        }
        _ => None,
    }
}

// ---- spans and histograms ----

/// Spans ride the wire as their exported fields; `process` is implied
/// ("server" — only a traced server piggybacks spans) and the timestamps
/// stay on the *server's* clock: the client re-anchors them before filing.
fn put_spans(buf: &mut Vec<u8>, spans: &[SpanData]) {
    put_u64(buf, spans.len() as u64);
    for s in spans {
        put_u64(buf, s.trace_id);
        put_u64(buf, s.span_id);
        put_u64(buf, s.parent_id);
        put_str(buf, &s.name);
        put_u64(buf, s.start_us);
        put_u64(buf, s.dur_us);
        put_u64(buf, s.tid as u64);
    }
}

fn get_spans(p: &mut &[u8]) -> Option<Vec<SpanData>> {
    let n = get_u64(p)? as usize;
    if n > MAX_FRAME / 56 {
        return None; // 7 words minimum per span; length is a lie
    }
    let mut spans = Vec::with_capacity(n);
    for _ in 0..n {
        spans.push(SpanData {
            trace_id: get_u64(p)?,
            span_id: get_u64(p)?,
            parent_id: get_u64(p)?,
            name: get_str(p)?,
            start_us: get_u64(p)?,
            dur_us: get_u64(p)?,
            tid: get_u64(p)? as u32,
            process: "server",
        });
    }
    Some(spans)
}

fn put_hist(buf: &mut Vec<u8>, h: &HistogramSnapshot) {
    put_u64(buf, h.count);
    put_u64(buf, h.sum);
    put_u64(buf, h.max);
    put_u64(buf, h.buckets.len() as u64);
    for &(low, high, count) in &h.buckets {
        put_u64(buf, low);
        put_u64(buf, high);
        put_u64(buf, count);
    }
}

fn get_hist(p: &mut &[u8]) -> Option<HistogramSnapshot> {
    let count = get_u64(p)?;
    let sum = get_u64(p)?;
    let max = get_u64(p)?;
    let n = get_u64(p)? as usize;
    if n > MAX_FRAME / 24 {
        return None; // 3 words per bucket; length is a lie
    }
    let mut buckets = Vec::with_capacity(n);
    for _ in 0..n {
        buckets.push((get_u64(p)?, get_u64(p)?, get_u64(p)?));
    }
    Some(HistogramSnapshot { count, sum, max, buckets })
}

// ---- operations ----

pub fn encode_operation(op: &Operation, buf: &mut Vec<u8>) {
    match op {
        Operation::Update(u) => {
            buf.push(OP_UPDATE);
            snb_store::encode_update(u, buf);
        }
        Operation::Complex(q) => {
            buf.push(OP_COMPLEX);
            encode_complex(q, buf);
        }
        Operation::Short(s) => {
            buf.push(OP_SHORT);
            buf.push(s.number() as u8);
            put_u64(buf, short_id(s));
        }
    }
}

pub fn decode_operation(p: &mut &[u8]) -> Option<Operation> {
    Some(match get_u8(p)? {
        OP_UPDATE => Operation::Update(snb_store::decode_update(p)?),
        OP_COMPLEX => Operation::Complex(decode_complex(p)?),
        OP_SHORT => {
            let number = get_u8(p)?;
            let id = get_u64(p)?;
            Operation::Short(match number {
                1 => ShortQuery::S1(PersonId(id)),
                2 => ShortQuery::S2(PersonId(id)),
                3 => ShortQuery::S3(PersonId(id)),
                4 => ShortQuery::S4(MessageId(id)),
                5 => ShortQuery::S5(MessageId(id)),
                6 => ShortQuery::S6(MessageId(id)),
                7 => ShortQuery::S7(MessageId(id)),
                _ => return None,
            })
        }
        _ => return None,
    })
}

fn short_id(s: &ShortQuery) -> u64 {
    match *s {
        ShortQuery::S1(p) | ShortQuery::S2(p) | ShortQuery::S3(p) => p.0,
        ShortQuery::S4(m) | ShortQuery::S5(m) | ShortQuery::S6(m) | ShortQuery::S7(m) => m.0,
    }
}

fn encode_complex(q: &ComplexQuery, buf: &mut Vec<u8>) {
    buf.push(q.number() as u8);
    match q {
        ComplexQuery::Q1(p) => {
            put_u64(buf, p.person.0);
            put_str(buf, &p.first_name);
        }
        ComplexQuery::Q2(p) => {
            put_u64(buf, p.person.0);
            put_i64(buf, p.max_date.0);
        }
        ComplexQuery::Q3(p) => {
            put_u64(buf, p.person.0);
            put_u64(buf, p.country_x as u64);
            put_u64(buf, p.country_y as u64);
            put_i64(buf, p.start.0);
            put_i64(buf, p.duration_days);
        }
        ComplexQuery::Q4(p) => {
            put_u64(buf, p.person.0);
            put_i64(buf, p.start.0);
            put_i64(buf, p.duration_days);
        }
        ComplexQuery::Q5(p) => {
            put_u64(buf, p.person.0);
            put_i64(buf, p.min_date.0);
        }
        ComplexQuery::Q6(p) => {
            put_u64(buf, p.person.0);
            put_u64(buf, p.tag as u64);
        }
        ComplexQuery::Q7(p) => put_u64(buf, p.person.0),
        ComplexQuery::Q8(p) => put_u64(buf, p.person.0),
        ComplexQuery::Q9(p) => {
            put_u64(buf, p.person.0);
            put_i64(buf, p.max_date.0);
        }
        ComplexQuery::Q10(p) => {
            put_u64(buf, p.person.0);
            buf.push(p.month);
        }
        ComplexQuery::Q11(p) => {
            put_u64(buf, p.person.0);
            put_u64(buf, p.country as u64);
            put_i64(buf, p.max_year as i64);
        }
        ComplexQuery::Q12(p) => {
            put_u64(buf, p.person.0);
            put_u64(buf, p.tag_class as u64);
        }
        ComplexQuery::Q13(p) => {
            put_u64(buf, p.person_x.0);
            put_u64(buf, p.person_y.0);
        }
        ComplexQuery::Q14(p) => {
            put_u64(buf, p.person_x.0);
            put_u64(buf, p.person_y.0);
        }
    }
}

fn decode_complex(p: &mut &[u8]) -> Option<ComplexQuery> {
    let number = get_u8(p)?;
    Some(match number {
        1 => ComplexQuery::Q1(Q1Params { person: PersonId(get_u64(p)?), first_name: get_str(p)? }),
        2 => ComplexQuery::Q2(Q2Params {
            person: PersonId(get_u64(p)?),
            max_date: SimTime(get_i64(p)?),
        }),
        3 => ComplexQuery::Q3(Q3Params {
            person: PersonId(get_u64(p)?),
            country_x: get_u64(p)? as usize,
            country_y: get_u64(p)? as usize,
            start: SimTime(get_i64(p)?),
            duration_days: get_i64(p)?,
        }),
        4 => ComplexQuery::Q4(Q4Params {
            person: PersonId(get_u64(p)?),
            start: SimTime(get_i64(p)?),
            duration_days: get_i64(p)?,
        }),
        5 => ComplexQuery::Q5(Q5Params {
            person: PersonId(get_u64(p)?),
            min_date: SimTime(get_i64(p)?),
        }),
        6 => {
            ComplexQuery::Q6(Q6Params { person: PersonId(get_u64(p)?), tag: get_u64(p)? as usize })
        }
        7 => ComplexQuery::Q7(Q7Params { person: PersonId(get_u64(p)?) }),
        8 => ComplexQuery::Q8(Q8Params { person: PersonId(get_u64(p)?) }),
        9 => ComplexQuery::Q9(Q9Params {
            person: PersonId(get_u64(p)?),
            max_date: SimTime(get_i64(p)?),
        }),
        10 => ComplexQuery::Q10(Q10Params { person: PersonId(get_u64(p)?), month: get_u8(p)? }),
        11 => ComplexQuery::Q11(Q11Params {
            person: PersonId(get_u64(p)?),
            country: get_u64(p)? as usize,
            max_year: get_i64(p)? as i32,
        }),
        12 => ComplexQuery::Q12(Q12Params {
            person: PersonId(get_u64(p)?),
            tag_class: get_u64(p)? as usize,
        }),
        13 => ComplexQuery::Q13(Q13Params {
            person_x: PersonId(get_u64(p)?),
            person_y: PersonId(get_u64(p)?),
        }),
        14 => ComplexQuery::Q14(Q14Params {
            person_x: PersonId(get_u64(p)?),
            person_y: PersonId(get_u64(p)?),
        }),
        _ => return None,
    })
}

// ---- errors ----

fn encode_error(e: &SnbError, buf: &mut Vec<u8>) {
    match e {
        SnbError::NotFound { entity, id } => {
            buf.push(ERR_NOT_FOUND);
            put_str(buf, entity);
            put_u64(buf, *id);
        }
        SnbError::Constraint(msg) => {
            buf.push(ERR_CONSTRAINT);
            put_str(buf, msg);
        }
        SnbError::Config(msg) => {
            buf.push(ERR_CONFIG);
            put_str(buf, msg);
        }
        SnbError::Io(e) => {
            buf.push(ERR_IO);
            put_str(buf, &e.to_string());
        }
    }
}

fn decode_error(p: &mut &[u8]) -> Option<SnbError> {
    Some(match get_u8(p)? {
        ERR_NOT_FOUND => {
            // `NotFound.entity` is `&'static str`; re-intern the names the
            // store actually raises, like the WAL codec does for dictionary
            // strings.
            let entity = match get_str(p)?.as_str() {
                "person" => "person",
                "forum" => "forum",
                "message" => "message",
                _ => "entity",
            };
            SnbError::NotFound { entity, id: get_u64(p)? }
        }
        ERR_CONSTRAINT => SnbError::Constraint(get_str(p)?),
        ERR_CONFIG => SnbError::Config(get_str(p)?),
        ERR_IO => SnbError::Io(io::Error::other(get_str(p)?)),
        _ => return None,
    })
}

// ---- framing ----

/// Write one frame. Returns the number of bytes put on the wire
/// (payload + 4-byte length prefix) for byte accounting.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<usize> {
    if payload.is_empty() || payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload of {} bytes out of range", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(payload.len() + 4)
}

/// Read one frame into `buf` (reusing its capacity). Returns the number of
/// bytes consumed from the wire. `UnexpectedEof` on the length prefix means
/// the peer closed the connection cleanly between frames.
///
/// The payload is read incrementally (`Read::take` + `read_to_end`) so
/// allocation tracks the bytes that actually arrive: a malformed length
/// prefix just under [`MAX_FRAME`] cannot force a 16 MiB zero-fill before
/// the first payload byte shows up.
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> io::Result<usize> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} out of range"),
        ));
    }
    buf.clear();
    let got = r.take(len as u64).read_to_end(buf)?;
    if got < len {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("frame truncated: {got} of {len} bytes"),
        ));
    }
    Ok(len + 4)
}

// ---- primitive helpers (same layout as the WAL codec) ----

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    put_u64(buf, v as u64);
}

fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            buf.push(1);
            put_u64(buf, v);
        }
        None => buf.push(0),
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn get_u8(p: &mut &[u8]) -> Option<u8> {
    let (&first, rest) = p.split_first()?;
    *p = rest;
    Some(first)
}

fn get_u64(p: &mut &[u8]) -> Option<u64> {
    let (bytes, rest) = p.split_first_chunk::<8>()?;
    *p = rest;
    Some(u64::from_le_bytes(*bytes))
}

fn get_i64(p: &mut &[u8]) -> Option<i64> {
    get_u64(p).map(|v| v as i64)
}

fn get_opt_u64(p: &mut &[u8]) -> Option<Option<u64>> {
    match get_u8(p)? {
        0 => Some(None),
        1 => Some(Some(get_u64(p)?)),
        _ => None,
    }
}

fn get_str(p: &mut &[u8]) -> Option<String> {
    let len = get_u64(p)? as usize;
    if len > p.len() {
        return None;
    }
    let (bytes, rest) = p.split_at(len);
    *p = rest;
    String::from_utf8(bytes.to_vec()).ok()
}
