//! 2-shard loopback: the sharded data path end to end. Two `snb-net`
//! servers each bulk-load one shard slice, a [`ShardedConnector`] replays
//! the partitioned update stream through the wire, and the result must be
//! *exactly* the single-process outcome: per-shard state byte-identical
//! (logical digest) to a union-stream replay, and scatter-gather reads
//! pointwise equal to the unsharded query.

use snb_core::rng::Rng;
use snb_core::shard::ShardMap;
use snb_core::{ForumId, MessageId, PersonId, SimTime};
use snb_datagen::{generate, Dataset, GeneratorConfig};
use snb_driver::connector::{Connector, Operation, StoreConnector};
use snb_driver::mix;
use snb_driver::scheduler::{run, DriverConfig};
use snb_net::{RemoteConnector, Server, ServerConfig, ShardedConnector};
use snb_queries::params::{ComplexQuery, Q9Params, ShortQuery};
use snb_queries::{sharded, Engine};
use snb_store::Store;
use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};

fn dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| generate(GeneratorConfig::with_persons(260).activity(0.5)).unwrap())
}

/// Bind one shard server: a store bulk-loaded with only shard `i`'s slice
/// (plus the replicated persons/knows), announcing its identity over the
/// GCT RPC.
fn shard_server(ds: &Dataset, map: ShardMap, shard: u32) -> (Server, Arc<Store>) {
    let store = Arc::new(Store::new());
    store.bulk_load_sharded(ds, ds.config.update_split, 2, map, shard);
    let connector = Arc::new(StoreConnector::new(Arc::clone(&store), Engine::Intended));
    let config = ServerConfig { shard, shards: map.shards(), ..ServerConfig::default() };
    let server = Server::bind_with_config("127.0.0.1:0", connector, config).unwrap();
    (server, store)
}

/// Logical digest of the graph state a shard is responsible for: the full
/// replicated person/knows graph, plus the forums, memberships, messages,
/// discussion trees, and likes whose forum the shard owns. Computed purely
/// through the public snapshot API, so it compares *visible state*, not
/// storage internals — the same function applied to the single-process
/// store with the same ownership filter must produce identical bytes.
fn shard_digest(store: &Store, map: ShardMap, shard: u32) -> String {
    let snap = store.pinned();
    let mut d = String::new();
    for p in 0..snap.person_slots() {
        let id = PersonId(p as u64);
        let Some(person) = snap.person_ref(id) else { continue };
        write!(d, "P{p}={}|{}|{};", person.first_name, person.last_name, person.creation_date.0)
            .unwrap();
        for (f, date) in snap.friends(id) {
            write!(d, "K{f}@{};", date.0).unwrap();
        }
    }
    for f in 0..snap.forum_slots() {
        let id = ForumId(f as u64);
        if map.shard_of_forum(id) != shard {
            continue;
        }
        let Some(forum) = snap.forum_ref(id) else { continue };
        write!(d, "F{f}={}|{}|{};", forum.title, forum.moderator.raw(), forum.creation_date.0)
            .unwrap();
        for (m, date) in snap.members_of(id) {
            write!(d, "M{m}@{};", date.0).unwrap();
        }
        for (p, date) in snap.posts_in_forum(id) {
            write!(d, "T{p}@{};", date.0).unwrap();
        }
    }
    for m in 0..snap.message_slots() {
        let id = MessageId(m as u64);
        let Some(row) = snap.message_ref(id) else { continue };
        if map.shard_of_forum(row.forum) != shard {
            continue;
        }
        write!(
            d,
            "G{m}={}|{}|{}|{:?};",
            row.author.raw(),
            row.creation_date.0,
            row.content,
            row.reply_info
        )
        .unwrap();
        for (r, date) in snap.replies_of(id) {
            write!(d, "R{r}@{};", date.0).unwrap();
        }
        for (l, date) in snap.likes_of(id) {
            write!(d, "L{l}@{};", date.0).unwrap();
        }
    }
    d
}

/// Acceptance criteria for the sharded tentpole, end to end over real
/// sockets:
///
/// 1. the partitioned update stream replayed through [`ShardedConnector`]
///    (broadcast persons/friendships, forum-routed trees, directory-routed
///    likes) leaves each shard byte-identical to a single-process replay
///    of the union stream, under the shard's ownership filter;
/// 2. the GCT dependency-visibility invariant verifies over the wire;
/// 3. Q9 scatter-gather equals the single-process rows pointwise for 20+
///    random parameter bindings, and S2 likewise.
#[test]
fn two_shard_loopback_replay_and_scatter_match_single_process() {
    let ds = dataset();
    let map = ShardMap::new(2);

    // Single-process oracle: union stream over the whole graph.
    let oracle = Arc::new(Store::new());
    oracle.bulk_load(ds);
    for u in ds.update_stream() {
        oracle.apply(&u.op).unwrap();
    }

    let (server0, store0) = shard_server(ds, map, 0);
    let (server1, store1) = shard_server(ds, map, 1);
    let addrs = [server0.local_addr().to_string(), server1.local_addr().to_string()];

    let router = ShardedConnector::connect(&addrs).unwrap();
    assert_eq!(router.shard_count(), 2);
    router.seed_routes(ds.message_routes());

    // Replay the update stream through the real driver scheduler: streams
    // partitioned across threads, dependent operations gated on GCT.
    let items = mix::updates_only(ds);
    assert!(!items.is_empty());
    let config = DriverConfig { partitions: 4, ..DriverConfig::default() };
    let report = run(&items, &router, &config).unwrap();
    assert_eq!(report.total_ops, items.len());

    // Every broadcast the router completed must be visible on every shard.
    assert!(router.gct_horizon() > 0, "stream contains person/friendship updates");
    router.gct_check().unwrap();

    // Final state: each shard == oracle filtered to that shard's slice.
    for (i, store) in [&store0, &store1].into_iter().enumerate() {
        let got = shard_digest(store, map, i as u32);
        let want = shard_digest(&oracle, map, i as u32);
        assert!(!want.is_empty());
        assert_eq!(got, want, "shard {i} state diverged from the single-process replay");
    }

    // Scatter-gather reads over the wire, merged client-side, versus the
    // unsharded query on the oracle — pointwise, for random bindings.
    let remotes: Vec<RemoteConnector> =
        addrs.iter().map(|a| RemoteConnector::connect(a.clone()).unwrap()).collect();
    let snap = oracle.pinned();
    let mut rng = Rng::new(0x51a2d);
    let persons = ds.persons.len() as u64;
    for trial in 0..24 {
        let person = PersonId(rng.below(persons));
        let max_date = SimTime(ds.config.update_split.0 + rng.below(1 << 34) as i64);
        let q = ComplexQuery::Q9(Q9Params { person, max_date });
        let op = Operation::Complex(q.clone());
        let parts = remotes.iter().map(|r| r.execute_partial(&op).unwrap().partial).collect();
        let merged = sharded::merge(&q, parts);
        let want = sharded::reference(&snap, Engine::Intended, &q);
        assert_eq!(merged, want, "Q9 trial {trial} diverged for person {person:?}");

        let s = ShortQuery::S2(person);
        let op = Operation::Short(s);
        let parts = remotes.iter().map(|r| r.execute_partial(&op).unwrap().partial).collect();
        let merged = sharded::merge_short(&s, parts);
        let want = sharded::reference_short(&snap, &s);
        assert_eq!(merged, want, "S2 trial {trial} diverged for person {person:?}");
    }

    for server in [server0, server1] {
        server.shutdown();
        server.join();
    }
}

/// A mixed workload (updates + complex reads + short-read walks) driven
/// through the router completes without errors, spreads requests over
/// both shards, and surfaces per-shard identity in the disclosure.
#[test]
fn two_shard_mixed_workload_runs_and_discloses_per_shard() {
    let ds = dataset();
    let map = ShardMap::new(2);
    let (server0, _store0) = shard_server(ds, map, 0);
    let (server1, _store1) = shard_server(ds, map, 1);
    let addrs = [server0.local_addr().to_string(), server1.local_addr().to_string()];

    let router = ShardedConnector::connect(&addrs).unwrap();
    router.seed_routes(ds.message_routes());

    let bindings = snb_params::uniform_bindings(ds, 48, 11);
    let items = mix::build_mix(ds, &bindings);
    let config = DriverConfig { partitions: 4, ..DriverConfig::default() };
    let report = run(&items, &router, &config).unwrap();
    assert!(report.total_ops >= items.len(), "walks ride on scattered reads too");
    router.gct_check().unwrap();

    let counters = router.counters();
    let get = |name: &str| {
        counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("counter {name} missing from disclosure"))
    };
    // Per-shard identity rides in the counter dump...
    assert_eq!(get("shard0.net.server.shard_index"), 0);
    assert_eq!(get("shard1.net.server.shard_index"), 1);
    assert_eq!(get("shard0.net.server.shard_count"), 2);
    // ...and both shards actually served work: scattered reads hit every
    // shard, point ops spread by id range.
    assert!(get("shard0.net.server.requests") > 0);
    assert!(get("shard1.net.server.requests") > 0);
    // The event-loop utilization counters are disclosed per shard.
    assert!(get("shard0.net.server.loop_busy_nanos") > 0);
    assert!(get("shard0.net.server.loop_idle_nanos") > 0);
    // Per-shard histograms carry each link's request latency.
    let histograms = router.histograms();
    for name in ["shard0.net.client.request_micros", "shard1.net.client.request_micros"] {
        assert!(
            histograms.iter().any(|(n, h)| n == name && !h.is_empty()),
            "{name} missing or empty in disclosure"
        );
    }

    for server in [server0, server1] {
        server.shutdown();
        server.join();
    }
}
