//! Readiness-loop server tests: connection churn must not leak, pipelined
//! v3 requests must come back matched by correlation id, and bare v2
//! clients must still be served.

use snb_core::PersonId;
use snb_datagen::{generate, Dataset, GeneratorConfig};
use snb_driver::connector::{Operation, StoreConnector};
use snb_net::{codec, PipelinedClient, Request, Response, Server, NET_MAGIC, NET_MAGIC_V3};
use snb_queries::params::ShortQuery;
use snb_queries::Engine;
use snb_store::Store;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

fn dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| generate(GeneratorConfig::with_persons(200).activity(0.3)).unwrap())
}

fn store_server() -> Server {
    let store = Arc::new(Store::new());
    store.bulk_load(dataset());
    let connector = Arc::new(StoreConnector::new(store, Engine::Intended));
    Server::bind("127.0.0.1:0", connector).unwrap()
}

/// Block until the server has reaped every accepted connection (closed
/// catches up to connections and the open gauge hits zero) or panic after
/// a deadline. Reaping is asynchronous — the event loop learns about a
/// hangup on its next readiness wakeup.
fn wait_reaped(server: &Server, deadline: Duration) {
    let t0 = Instant::now();
    loop {
        let accepted = server.metrics().connections.get();
        let closed = server.metrics().closed.get();
        let open = server.metrics().open_conns.get();
        if accepted == closed && open == 0 {
            return;
        }
        assert!(
            t0.elapsed() < deadline,
            "connections not reaped: accepted={accepted} closed={closed} open={open}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").unwrap();
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap()
}

/// Satellite: connection churn must not leak. 200 connect/disconnect
/// cycles — some after a full handshake, some hung up mid-handshake — must
/// all be reaped, with `accepted - closed` settling to zero and (on Linux)
/// no thread growth: the worker pool is fixed, there is no per-connection
/// handler to leak.
#[test]
fn connection_churn_is_reaped() {
    let server = store_server();
    let addr = server.local_addr();

    #[cfg(target_os = "linux")]
    let threads_before = thread_count();

    for i in 0..200u32 {
        let mut stream = TcpStream::connect(addr).unwrap();
        if i % 3 != 0 {
            // Full handshake, then hang up without sending a request.
            stream.write_all(&NET_MAGIC_V3).unwrap();
            let mut echo = [0u8; 8];
            stream.read_exact(&mut echo).unwrap();
            assert_eq!(echo, NET_MAGIC_V3);
        }
        // else: drop mid-handshake; the server sees EOF before any magic.
        drop(stream);
    }

    wait_reaped(&server, Duration::from_secs(10));
    assert_eq!(server.metrics().connections.get(), 200);

    #[cfg(target_os = "linux")]
    {
        let threads_after = thread_count();
        assert!(
            threads_after <= threads_before,
            "thread count grew under churn: {threads_before} -> {threads_after}"
        );
    }

    // The server still works after all that churn.
    let mut client = PipelinedClient::connect(addr.to_string()).unwrap();
    client.send(&Operation::Short(ShortQuery::S1(PersonId(1)))).unwrap();
    let (_, response) = client.recv().unwrap();
    assert!(matches!(response, Response::Outcome(..)), "got {response:?}");

    server.shutdown();
    server.join();
}

/// Satellite: K pipelined requests on one v3 connection all complete, and
/// every response's correlation id matches one request — regardless of the
/// order the server finished them in.
#[test]
fn pipelined_requests_match_correlation_ids() {
    let server = store_server();
    let mut client = PipelinedClient::connect(server.local_addr().to_string()).unwrap();

    const K: usize = 32;
    let mut sent = std::collections::BTreeSet::new();
    for i in 0..K {
        let op = Operation::Short(ShortQuery::S1(PersonId((i % 50) as u64)));
        let corr = client.send(&op).unwrap();
        assert!(sent.insert(corr), "correlation ids must be unique");
    }
    assert_eq!(client.in_flight(), K);

    let mut got = std::collections::BTreeSet::new();
    for _ in 0..K {
        let (corr, response) = client.recv().unwrap();
        assert!(got.insert(corr), "duplicate response for correlation id {corr}");
        match response {
            Response::Outcome(..) => {}
            other => panic!("pipelined request failed: {other:?}"),
        }
    }
    assert_eq!(got, sent, "every request answered exactly once");
    assert_eq!(client.in_flight(), 0);

    server.shutdown();
    server.join();
}

/// Compatibility: a bare v2 client (no correlation ids, strict
/// request/response alternation) is still served by the readiness-loop
/// server — the handshake magic selects the framing per connection.
#[test]
fn v2_client_is_still_served() {
    let server = store_server();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    stream.write_all(&NET_MAGIC).unwrap();
    let mut echo = [0u8; 8];
    stream.read_exact(&mut echo).unwrap();
    assert_eq!(echo, NET_MAGIC, "server echoes the v2 magic back to v2 clients");

    for i in 0..5u64 {
        let op = Operation::Short(ShortQuery::S1(PersonId(i)));
        let mut payload = Vec::new();
        Request::Execute(op, None).encode(&mut payload);
        codec::write_frame(&mut stream, &payload).unwrap();

        let mut frame = Vec::new();
        codec::read_frame(&mut stream, &mut frame).unwrap();
        // v2 frames carry the response directly — no correlation prefix.
        let response = Response::decode(&frame).expect("v2 response must decode");
        assert!(matches!(response, Response::Outcome(..)), "got {response:?}");
    }

    // The counters RPC works over v2 too.
    let mut payload = Vec::new();
    Request::Counters.encode(&mut payload);
    codec::write_frame(&mut stream, &payload).unwrap();
    let mut frame = Vec::new();
    codec::read_frame(&mut stream, &mut frame).unwrap();
    let Some(Response::Counters { counters, .. }) = Response::decode(&frame) else {
        panic!("counters RPC failed over v2");
    };
    assert!(counters.iter().any(|(n, _)| n == "net.server.requests"));

    server.shutdown();
    server.join();
}

/// A v3 connection that sends garbage instead of a well-formed request is
/// answered with an error and severed, without taking the server down.
#[test]
fn malformed_frame_severs_only_that_connection() {
    let server = store_server();
    let addr = server.local_addr();

    let mut bad = TcpStream::connect(addr).unwrap();
    bad.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    bad.write_all(&NET_MAGIC_V3).unwrap();
    let mut echo = [0u8; 8];
    bad.read_exact(&mut echo).unwrap();
    // Well-framed garbage: valid length prefix, junk payload.
    codec::write_frame(&mut bad, &[0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03, 0x04, 0x05]).unwrap();
    // The server replies with an error frame (best effort) and closes; EOF
    // follows either way.
    let mut rest = Vec::new();
    let _ = bad.read_to_end(&mut rest);

    // A healthy client on the same server is unaffected.
    let mut good = PipelinedClient::connect(addr.to_string()).unwrap();
    good.send(&Operation::Short(ShortQuery::S1(PersonId(1)))).unwrap();
    let (_, response) = good.recv().unwrap();
    assert!(matches!(response, Response::Outcome(..)));

    server.shutdown();
    server.join();
}
