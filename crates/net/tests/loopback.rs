//! Loopback integration tests: the full driver workload through
//! `RemoteConnector` → TCP → `Server` → `StoreConnector` must behave
//! exactly like the in-process path, and failures must be prompt, not
//! hangs.

use snb_core::time::SimTime;
use snb_core::{MessageId, PersonId, SnbError};
use snb_datagen::{generate, Dataset, GeneratorConfig};
use snb_driver::connector::{Connector, OpOutcome, Operation, SleepConnector, StoreConnector};
use snb_driver::mix::{self, WorkItem};
use snb_driver::scheduler::{run, DriverConfig};
use snb_net::{codec, NetConfig, RemoteConnector, Request, Response, Server};
use snb_queries::params::{
    ComplexQuery, Q10Params, Q11Params, Q12Params, Q13Params, Q14Params, Q1Params, Q2Params,
    Q3Params, Q4Params, Q5Params, Q6Params, Q7Params, Q8Params, Q9Params, ShortQuery,
};
use snb_queries::Engine;
use snb_store::Store;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

fn dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| generate(GeneratorConfig::with_persons(300).activity(0.5)).unwrap())
}

fn store_server(ds: &Dataset) -> Server {
    let store = Arc::new(Store::new());
    store.bulk_load(ds);
    let connector = Arc::new(StoreConnector::new(store, Engine::Intended));
    Server::bind("127.0.0.1:0", connector).unwrap()
}

fn every_complex() -> Vec<ComplexQuery> {
    let p = PersonId(7);
    vec![
        ComplexQuery::Q1(Q1Params { person: p, first_name: "Käthe".into() }),
        ComplexQuery::Q2(Q2Params { person: p, max_date: SimTime(123_456) }),
        ComplexQuery::Q3(Q3Params {
            person: p,
            country_x: 3,
            country_y: 9,
            start: SimTime(-5),
            duration_days: 28,
        }),
        ComplexQuery::Q4(Q4Params { person: p, start: SimTime(77), duration_days: 30 }),
        ComplexQuery::Q5(Q5Params { person: p, min_date: SimTime(i64::MIN) }),
        ComplexQuery::Q6(Q6Params { person: p, tag: 11 }),
        ComplexQuery::Q7(Q7Params { person: p }),
        ComplexQuery::Q8(Q8Params { person: p }),
        ComplexQuery::Q9(Q9Params { person: p, max_date: SimTime(i64::MAX) }),
        ComplexQuery::Q10(Q10Params { person: p, month: 12 }),
        ComplexQuery::Q11(Q11Params { person: p, country: 2, max_year: 2010 }),
        ComplexQuery::Q12(Q12Params { person: p, tag_class: 4 }),
        ComplexQuery::Q13(Q13Params { person_x: p, person_y: PersonId(8) }),
        ComplexQuery::Q14(Q14Params { person_x: p, person_y: PersonId(9) }),
    ]
}

fn every_short() -> Vec<ShortQuery> {
    vec![
        ShortQuery::S1(PersonId(1)),
        ShortQuery::S2(PersonId(2)),
        ShortQuery::S3(PersonId(3)),
        ShortQuery::S4(MessageId(4)),
        ShortQuery::S5(MessageId(5)),
        ShortQuery::S6(MessageId(6)),
        ShortQuery::S7(MessageId(7)),
    ]
}

fn request_round_trip(req: &Request) -> Request {
    let mut buf = Vec::new();
    req.encode(&mut buf);
    Request::decode(&buf).expect("request must decode")
}

fn response_round_trip(resp: &Response) -> Response {
    let mut buf = Vec::new();
    resp.encode(&mut buf);
    Response::decode(&buf).expect("response must decode")
}

/// Every operation variant — all 14 complex reads, all 7 short reads, and
/// every update kind the generator emits — survives a request round trip.
#[test]
fn codec_round_trips_every_operation_variant() {
    let mut ops: Vec<Operation> = Vec::new();
    ops.extend(every_complex().into_iter().map(Operation::Complex));
    ops.extend(every_short().into_iter().map(Operation::Short));
    // All 8 update kinds appear in a generated stream.
    let mut kinds_seen = std::collections::BTreeSet::new();
    for u in dataset().update_stream() {
        if kinds_seen.insert(u.op.query_number()) {
            ops.push(Operation::Update(u.op.clone()));
        }
    }
    assert!(kinds_seen.len() >= 7, "update stream only covered {kinds_seen:?}");

    for op in &ops {
        // Both without and with a propagated trace context.
        let decoded = request_round_trip(&Request::Execute(op.clone(), None));
        let Request::Execute(back, ctx) = decoded else { panic!("wrong request variant") };
        assert_eq!(format!("{op:?}"), format!("{back:?}"));
        assert_eq!(ctx, None);
        let decoded = request_round_trip(&Request::Execute(op.clone(), Some((77, 12))));
        let Request::Execute(back, ctx) = decoded else { panic!("wrong request variant") };
        assert_eq!(format!("{op:?}"), format!("{back:?}"));
        assert_eq!(ctx, Some((77, 12)));
    }
    assert!(matches!(request_round_trip(&Request::Counters), Request::Counters));
}

/// Outcomes, all four error kinds, and counters dumps survive a response
/// round trip.
#[test]
fn codec_round_trips_every_response_variant() {
    let outcomes = [
        OpOutcome { rows: 0, seed_person: None, seed_message: None },
        OpOutcome { rows: 42, seed_person: Some(PersonId(3)), seed_message: None },
        OpOutcome { rows: 1, seed_person: None, seed_message: Some(MessageId(u64::MAX)) },
        OpOutcome { rows: 7, seed_person: Some(PersonId(0)), seed_message: Some(MessageId(9)) },
    ];
    let sample_spans = vec![
        snb_obs::trace::SpanData {
            trace_id: 9,
            span_id: 10,
            parent_id: 3,
            name: "server.execute".into(),
            start_us: 100,
            dur_us: 50,
            tid: 2,
            process: "server",
        },
        snb_obs::trace::SpanData {
            trace_id: 9,
            span_id: 11,
            parent_id: 10,
            name: "store.stage.apply".into(),
            start_us: 110,
            dur_us: 20,
            tid: 2,
            process: "server",
        },
    ];
    for out in outcomes {
        for spans in [Vec::new(), sample_spans.clone()] {
            let Response::Outcome(back, back_spans) =
                response_round_trip(&Response::Outcome(out, spans.clone()))
            else {
                panic!("wrong response variant")
            };
            assert_eq!(back.rows, out.rows);
            assert_eq!(back.seed_person, out.seed_person);
            assert_eq!(back.seed_message, out.seed_message);
            assert_eq!(back_spans, spans, "piggybacked spans must survive the wire");
        }
    }

    let errors = [
        SnbError::NotFound { entity: "forum", id: 443 },
        SnbError::Constraint("duplicate knows edge".into()),
        SnbError::Config("bad flag".into()),
        SnbError::Io(std::io::Error::other("socket gone")),
    ];
    for e in errors {
        let msg = e.to_string();
        let Response::Error(back) = response_round_trip(&Response::Error(e)) else {
            panic!("wrong response variant")
        };
        assert_eq!(back.to_string(), msg);
    }

    let counters =
        vec![("net.server.requests".to_string(), 12u64), ("store.wal.bytes".to_string(), 0)];
    let live = snb_obs::LatencyHistogram::new();
    for v in [1, 5, 1000, 123_456, 7] {
        live.record(v);
    }
    let histograms = vec![
        ("store.stage.apply_nanos".to_string(), live.snapshot()),
        ("empty".to_string(), snb_obs::HistogramSnapshot::default()),
    ];
    let Response::Counters { counters: back, histograms: back_h } =
        response_round_trip(&Response::Counters {
            counters: counters.clone(),
            histograms: histograms.clone(),
        })
    else {
        panic!("wrong response variant")
    };
    assert_eq!(back, counters);
    assert_eq!(back_h, histograms, "histogram snapshots must survive the wire losslessly");
    assert_eq!(back_h[0].1.value_at_quantile(0.99), live.value_at_quantile(0.99));
}

/// The v3 sharding extensions — partial requests, both partial response
/// shapes, and the GCT RPC — survive the wire losslessly.
#[test]
fn codec_round_trips_sharding_frames() {
    use snb_queries::sharded::{GroupRow, MergedRow, Partial};

    for op in every_complex().into_iter().map(Operation::Complex) {
        let decoded = request_round_trip(&Request::Partial(op.clone()));
        let Request::Partial(back) = decoded else { panic!("wrong request variant") };
        assert_eq!(format!("{op:?}"), format!("{back:?}"));
    }
    assert!(matches!(request_round_trip(&Request::Gct), Request::Gct));

    let top = Partial::Top {
        limit: 20,
        rows: vec![
            MergedRow {
                key: [-5, 3, 0],
                cols: vec![1, -2, i64::MAX],
                text: vec!["Käthe".into(), String::new()],
            },
            MergedRow { key: [i64::MIN, i64::MAX, 7], cols: vec![], text: vec![] },
        ],
    };
    let groups = Partial::Groups {
        rows: vec![GroupRow { k1: 9, k2: u64::MAX, a: -4, b: 11 }],
        pairs: vec![(1, 2), (3, 4)],
        paths: vec![vec![1, 2, 3], vec![]],
    };
    let seeds = [Some((u64::MAX, i64::MIN)), None, Some((7, -3))];
    for (p, seed) in [top, groups, Partial::Top { limit: 0, rows: vec![] }].into_iter().zip(seeds) {
        let Response::Partial(back, s) = response_round_trip(&Response::Partial(p.clone(), seed))
        else {
            panic!("wrong response variant")
        };
        assert_eq!((back, s), (p, seed), "partial + seed must survive the wire losslessly");
    }

    let Response::Gct { shard, shards, horizon } =
        response_round_trip(&Response::Gct { shard: 1, shards: 4, horizon: -123 })
    else {
        panic!("wrong response variant")
    };
    assert_eq!((shard, shards, horizon), (1, 4, -123));
}

/// Truncated or trailing-garbage payloads must be rejected, and the framing
/// layer must refuse absurd lengths instead of allocating them.
#[test]
fn codec_rejects_malformed_input() {
    let mut buf = Vec::new();
    Request::Execute(Operation::Short(ShortQuery::S1(PersonId(5))), None).encode(&mut buf);
    assert!(Request::decode(&buf[..buf.len() - 1]).is_none(), "truncation must fail");
    buf.push(0xFF);
    assert!(Request::decode(&buf).is_none(), "trailing bytes must fail");
    assert!(Request::decode(&[]).is_none());
    assert!(Request::decode(&[99]).is_none(), "unknown tag must fail");

    // A length prefix past MAX_FRAME is rejected before any payload read.
    let huge = (codec::MAX_FRAME as u32 + 1).to_le_bytes();
    let mut cursor = &huge[..];
    let err = codec::read_frame(&mut cursor, &mut Vec::new()).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    // Zero-length frames are likewise invalid.
    let zero = 0u32.to_le_bytes();
    let mut cursor = &zero[..];
    assert!(codec::read_frame(&mut cursor, &mut Vec::new()).is_err());
}

/// Acceptance criterion: the full update stream driven through the remote
/// connector completes and executes exactly as many operations as the
/// in-process run, and both stores converge to the same counters.
#[test]
fn updates_only_loopback_matches_in_process() {
    let ds = dataset();
    let items = mix::updates_only(ds);
    assert!(!items.is_empty());
    let config = DriverConfig { partitions: 4, ..DriverConfig::default() };

    let local_store = Arc::new(Store::new());
    local_store.bulk_load(ds);
    let local = StoreConnector::new(Arc::clone(&local_store), Engine::Intended);
    let local_report = run(&items, &local, &config).unwrap();

    let server = store_server(ds);
    let remote = RemoteConnector::connect(server.local_addr().to_string()).unwrap();
    let remote_report = run(&items, &remote, &config).unwrap();

    assert_eq!(remote_report.total_ops, local_report.total_ops);
    assert_eq!(remote_report.total_ops, items.len(), "updates only: no walk short reads");
    server.shutdown();
    server.join();
}

/// Acceptance criterion: the full interactive mix (updates, complex reads,
/// short-read walks) through the wire equals the in-process run, op for
/// op, and the counters RPC exposes both SUT and net counters.
#[test]
fn mix_loopback_matches_in_process() {
    let ds = dataset();
    let bindings = snb_params::uniform_bindings(ds, 64, 7);
    let items = mix::build_mix(ds, &bindings);
    let config = DriverConfig { partitions: 4, ..DriverConfig::default() };

    let local_store = Arc::new(Store::new());
    local_store.bulk_load(ds);
    let local = StoreConnector::new(Arc::clone(&local_store), Engine::Intended);
    let local_report = run(&items, &local, &config).unwrap();
    assert!(local_report.total_ops > items.len(), "walk must add short reads");

    let server = store_server(ds);
    let remote = RemoteConnector::connect(server.local_addr().to_string()).unwrap();
    let remote_report = run(&items, &remote, &config).unwrap();

    assert_eq!(
        remote_report.total_ops, local_report.total_ops,
        "remote run must execute the identical operation count (walks included)"
    );

    // The counters RPC merges SUT counters with the server's net counters.
    let (counters, histograms) = remote.remote_counters().unwrap();
    let get = |name: &str| {
        counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap_or_else(|| {
            panic!("counter {name} missing from RPC dump");
        })
    };
    assert!(get("net.server.requests") as usize >= remote_report.total_ops);
    assert!(get("net.server.bytes_in") > 0);
    assert!(get("net.server.bytes_out") > 0);
    assert!(counters.iter().any(|(n, _)| n.starts_with("store.")), "SUT counters must be merged");
    // ... and the RPC carries the SUT's full histogram snapshots, so a
    // remote run's disclosure equals an in-process run's.
    let apply = histograms
        .iter()
        .find(|(n, _)| n == "store.stage.apply_nanos")
        .map(|(_, h)| h)
        .expect("stage histograms missing from RPC dump");
    assert!(apply.count > 0, "writes recorded stage samples");
    assert!(histograms.iter().any(|(n, _)| n == "net.server.request_micros"));
    // Driver-side counters surface through the Connector trait.
    let client_side = remote.counters();
    assert!(client_side.iter().any(|(n, _)| n == "net.client.requests"));
    let client_hists = remote.histograms();
    assert!(client_hists.iter().any(|(n, h)| n == "net.client.request_micros" && !h.is_empty()));
    assert!(client_hists.iter().any(|(n, _)| n == "store.stage.apply_nanos"));
    // The report built over the wire therefore carries the same stage
    // histogram names as an in-process report.
    let local_names: std::collections::BTreeSet<&str> =
        local_report.connector_histograms.iter().map(|(n, _)| n.as_str()).collect();
    let remote_names: std::collections::BTreeSet<&str> = remote_report
        .connector_histograms
        .iter()
        .filter(|(n, _)| !n.starts_with("net."))
        .map(|(n, _)| n.as_str())
        .collect();
    assert_eq!(local_names, remote_names, "remote disclosure must match in-process");
    // Same equality for counter names: everything the store registers —
    // including the store.mem.* memory gauges — must surface identically
    // in a remote report and an in-process one (the remote side adds only
    // net.* client/server counters on top).
    let local_counter_names: std::collections::BTreeSet<&str> =
        local_report.connector_counters.iter().map(|(n, _)| n.as_str()).collect();
    let remote_counter_names: std::collections::BTreeSet<&str> = remote_report
        .connector_counters
        .iter()
        .filter(|(n, _)| !n.starts_with("net."))
        .map(|(n, _)| n.as_str())
        .collect();
    assert_eq!(local_counter_names, remote_counter_names, "counter names must match in-process");
    for name in ["store.mem.run_bytes.person_messages", "store.mem.dict_bytes"] {
        assert!(local_counter_names.contains(name), "{name} missing from disclosure");
    }
    // The gauges carry measured values, not zeros: the loaded store holds
    // real index runs on both sides of the wire.
    let mem_value = |report: &snb_driver::RunReport, name: &str| {
        report
            .connector_counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or_default()
    };
    assert!(mem_value(&local_report, "store.mem.index_bytes") > 0);
    assert!(mem_value(&remote_report, "store.mem.index_bytes") > 0);
    // At most one connection per partition, plus the eager validation dial.
    assert!(remote.metrics().connections.get() <= config.partitions as u64 + 1);
}

/// Tentpole acceptance: with tracing enabled, a loopback run produces ONE
/// trace per operation that stitches client queue → wire RTT → server
/// execution, and the whole set renders as a well-formed Chrome trace.
#[test]
fn loopback_trace_stitches_client_and_server_spans() {
    use snb_obs::trace;

    let ds = dataset();
    let server = store_server(ds);
    let remote = RemoteConnector::connect(server.local_addr().to_string()).unwrap();

    trace::enable(1);
    let out = remote
        .execute(&Operation::Complex(ComplexQuery::Q2(Q2Params {
            person: PersonId(0),
            max_date: SimTime(i64::MAX),
        })))
        .unwrap();
    trace::disable();
    assert_eq!(out.seed_person, Some(PersonId(0)));

    let spans = trace::drain();
    let wire =
        spans.iter().find(|s| s.name == "net.client.request").expect("client wire span recorded");
    assert_eq!(wire.process, "driver");
    let server_root = spans
        .iter()
        .find(|s| s.name == "server.execute")
        .expect("server spans piggybacked on the response");
    assert_eq!(server_root.process, "server");
    assert_eq!(server_root.trace_id, wire.trace_id, "one trace across the wire");
    assert_eq!(server_root.parent_id, wire.span_id, "server root hangs off the wire span");
    // Re-anchored server time lies within the client's wire span.
    assert!(server_root.start_us >= wire.start_us);
    assert!(
        server_root.start_us + server_root.dur_us <= wire.start_us + wire.dur_us,
        "server root [{} +{}] escapes wire [{} +{}]",
        server_root.start_us,
        server_root.dur_us,
        wire.start_us,
        wire.dur_us,
    );
    // The server-side read path recorded children under its root.
    let trace_spans: Vec<_> =
        spans.iter().filter(|s| s.trace_id == wire.trace_id).cloned().collect();
    assert!(
        trace_spans.iter().any(|s| s.process == "server" && s.name.starts_with("store.read.")),
        "server read-path spans present: {trace_spans:#?}"
    );
    trace::validate_nesting(&trace_spans).expect("stitched trace nests");

    let doc = trace::export_chrome_trace(&trace_spans).render();
    assert!(doc.contains("\"traceEvents\""));
    assert!(doc.contains("\"server\""), "server process lane exported");

    server.shutdown();
    server.join();
}

/// Killing the server mid-run must abort the driver within the configured
/// request timeout — a dead SUT must fail the benchmark, not hang it.
#[test]
fn server_death_mid_run_fails_driver_promptly() {
    let server =
        Server::bind("127.0.0.1:0", Arc::new(SleepConnector::new(Duration::from_millis(2))))
            .unwrap();
    let remote = RemoteConnector::with_config(
        server.local_addr().to_string(),
        NetConfig {
            request_timeout: Duration::from_secs(2),
            connect_retries: 1,
            retry_backoff: Duration::from_millis(20),
            ..NetConfig::default()
        },
    )
    .unwrap();

    // ~4 s of work at 2 ms per op across 2 partitions; the server dies long
    // before that.
    let items: Vec<WorkItem> = (0..4000)
        .map(|i| WorkItem {
            due: SimTime(i),
            dep: SimTime(0),
            partition_hint: (i % 2) as u64,
            op: Operation::Short(ShortQuery::S1(PersonId(1))),
        })
        .collect();
    let config = DriverConfig { partitions: 2, ..DriverConfig::default() };

    let killer = std::thread::spawn({
        let started = Instant::now();
        move || {
            std::thread::sleep(Duration::from_millis(150));
            server.shutdown();
            server.join();
            started.elapsed()
        }
    });

    let t0 = Instant::now();
    let result = run(&items, &remote, &config);
    let wall = t0.elapsed();
    killer.join().unwrap();

    let err = result.expect_err("driver must fail once the server is gone");
    assert!(matches!(err, SnbError::Io(_)), "expected a transport error, got: {err}");
    assert!(
        wall < Duration::from_secs(8),
        "driver must fail within the request timeout, took {wall:?}"
    );
}
