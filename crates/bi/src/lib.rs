//! # snb-bi
//!
//! The SNB Business Intelligence workload — at the paper's writing "a
//! working draft" (§1): "a set of queries that access a large percentage of
//! all entities in the dataset (the 'fact tables'), and groups these in
//! various dimensions [...] similarities with existing relational Business
//! Intelligence benchmarks like TPC-H and TPC-DS; the distinguishing factor
//! is the presence of graph traversal predicates and recursion."
//!
//! Six representative drafts over the message fact table and its
//! dimensions (time, tag, country, person), executed against a store
//! snapshot so they compose with the Interactive workload's concurrent
//! updates. Every query scans a large fraction of the dataset — the
//! defining contrast with the Interactive reads.

use snb_core::dict::Dictionaries;
use snb_core::time::SimTime;
use snb_core::{MessageId, PersonId};
use snb_store::PinnedSnapshot;
use std::collections::HashMap;

/// BI-1 "Posting summary": message counts, average length and share of
/// total, grouped by (year, message kind).
#[derive(Debug, Clone, PartialEq)]
pub struct PostingSummaryRow {
    /// Calendar year.
    pub year: i64,
    /// True for comments, false for posts.
    pub is_comment: bool,
    /// Message count in the group.
    pub count: u64,
    /// Average content length in the group.
    pub avg_length: f64,
    /// Fraction of all messages.
    pub share: f64,
}

/// Run BI-1.
pub fn bi1_posting_summary(snap: &PinnedSnapshot<'_>) -> Vec<PostingSummaryRow> {
    let mut groups: HashMap<(i64, bool), (u64, u64)> = HashMap::new();
    let mut total = 0u64;
    for m in 0..snap.message_slots() as u64 {
        let Some(row) = snap.message(MessageId(m)) else { continue };
        total += 1;
        let e = groups.entry((row.creation_date.year(), row.is_comment())).or_insert((0, 0));
        e.0 += 1;
        e.1 += row.content.len() as u64;
    }
    let mut out: Vec<PostingSummaryRow> = groups
        .into_iter()
        .map(|((year, is_comment), (count, bytes))| PostingSummaryRow {
            year,
            is_comment,
            count,
            avg_length: bytes as f64 / count as f64,
            share: count as f64 / total.max(1) as f64,
        })
        .collect();
    out.sort_by_key(|a| (a.year, a.is_comment));
    out
}

/// BI-2 "Tag evolution": per tag, message counts in two consecutive months
/// and the absolute difference, descending by difference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagEvolutionRow {
    /// Tag name.
    pub tag: String,
    /// Count in the first month.
    pub count_a: u64,
    /// Count in the second month.
    pub count_b: u64,
    /// |count_a - count_b|.
    pub diff: u64,
}

/// Run BI-2 for the month bucket `month` (0-based from simulation start)
/// and its successor.
pub fn bi2_tag_evolution(
    snap: &PinnedSnapshot<'_>,
    month: i64,
    limit: usize,
) -> Vec<TagEvolutionRow> {
    let dicts = Dictionaries::global();
    let mut a: HashMap<u64, u64> = HashMap::new();
    let mut b: HashMap<u64, u64> = HashMap::new();
    for m in 0..snap.message_slots() as u64 {
        let id = MessageId(m);
        let Some(meta) = snap.message_meta(id) else { continue };
        let bucket = meta.creation_date.month_bucket();
        let target = if bucket == month {
            &mut a
        } else if bucket == month + 1 {
            &mut b
        } else {
            continue;
        };
        for t in snap.message_tags(id) {
            *target.entry(t.raw()).or_default() += 1;
        }
    }
    let tags: std::collections::HashSet<u64> = a.keys().chain(b.keys()).copied().collect();
    let mut out: Vec<TagEvolutionRow> = tags
        .into_iter()
        .map(|t| {
            let ca = a.get(&t).copied().unwrap_or(0);
            let cb = b.get(&t).copied().unwrap_or(0);
            TagEvolutionRow {
                tag: dicts.tags.tag(t as usize).name.clone(),
                count_a: ca,
                count_b: cb,
                diff: ca.abs_diff(cb),
            }
        })
        .collect();
    out.sort_by(|x, y| {
        (std::cmp::Reverse(x.diff), &x.tag).cmp(&(std::cmp::Reverse(y.diff), &y.tag))
    });
    out.truncate(limit);
    out
}

/// BI-3 "Popular topics by country": top tags of messages sent from a
/// country.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountryTopicRow {
    /// Tag name.
    pub tag: String,
    /// Message count.
    pub count: u64,
}

/// Run BI-3.
pub fn bi3_popular_topics(
    snap: &PinnedSnapshot<'_>,
    country: usize,
    limit: usize,
) -> Vec<CountryTopicRow> {
    let dicts = Dictionaries::global();
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for m in 0..snap.message_slots() as u64 {
        let id = MessageId(m);
        let Some(meta) = snap.message_meta(id) else { continue };
        if meta.country as usize != country {
            continue;
        }
        for t in snap.message_tags(id) {
            *counts.entry(t.raw()).or_default() += 1;
        }
    }
    let mut out: Vec<CountryTopicRow> = counts
        .into_iter()
        .map(|(t, count)| CountryTopicRow { tag: dicts.tags.tag(t as usize).name.clone(), count })
        .collect();
    out.sort_by(|a, b| {
        (std::cmp::Reverse(a.count), &a.tag).cmp(&(std::cmp::Reverse(b.count), &b.tag))
    });
    out.truncate(limit);
    out
}

/// BI-4 "Activity by country": message and person counts per home country.
#[derive(Debug, Clone, PartialEq)]
pub struct CountryActivityRow {
    /// Country name.
    pub country: &'static str,
    /// Resident persons.
    pub persons: u64,
    /// Messages authored by residents.
    pub messages: u64,
    /// Messages per resident.
    pub messages_per_person: f64,
}

/// Run BI-4.
pub fn bi4_country_activity(snap: &PinnedSnapshot<'_>) -> Vec<CountryActivityRow> {
    let dicts = Dictionaries::global();
    let mut persons = vec![0u64; dicts.places.country_count()];
    let mut home = HashMap::new();
    for p in 0..snap.person_slots() as u64 {
        if let Some(person) = snap.person(PersonId(p)) {
            persons[person.country] += 1;
            home.insert(p, person.country);
        }
    }
    let mut messages = vec![0u64; dicts.places.country_count()];
    for m in 0..snap.message_slots() as u64 {
        if let Some(meta) = snap.message_meta(MessageId(m)) {
            if let Some(&c) = home.get(&meta.author.raw()) {
                messages[c] += 1;
            }
        }
    }
    let mut out: Vec<CountryActivityRow> = (0..dicts.places.country_count())
        .filter(|&c| persons[c] > 0)
        .map(|c| CountryActivityRow {
            country: dicts.places.country(c).name,
            persons: persons[c],
            messages: messages[c],
            messages_per_person: messages[c] as f64 / persons[c] as f64,
        })
        .collect();
    out.sort_by(|a, b| b.messages.cmp(&a.messages).then(a.country.cmp(b.country)));
    out
}

/// BI-5 "Experts on a topic": persons with the most messages carrying a
/// tag, with the likes those messages received.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopicExpertRow {
    /// The expert.
    pub person: PersonId,
    /// Messages about the tag.
    pub messages: u64,
    /// Likes received on those messages.
    pub likes: u64,
}

/// Run BI-5.
pub fn bi5_topic_experts(
    snap: &PinnedSnapshot<'_>,
    tag: usize,
    limit: usize,
) -> Vec<TopicExpertRow> {
    let mut agg: HashMap<u64, (u64, u64)> = HashMap::new();
    for m in 0..snap.message_slots() as u64 {
        let id = MessageId(m);
        let Some(meta) = snap.message_meta(id) else { continue };
        if !snap.message_tags(id).iter().any(|t| t.index() == tag) {
            continue;
        }
        let e = agg.entry(meta.author.raw()).or_default();
        e.0 += 1;
        e.1 += snap.likes_of_iter(id).count() as u64;
    }
    let mut out: Vec<TopicExpertRow> = agg
        .into_iter()
        .map(|(p, (messages, likes))| TopicExpertRow { person: PersonId(p), messages, likes })
        .collect();
    out.sort_by_key(|r| (std::cmp::Reverse(r.messages), std::cmp::Reverse(r.likes), r.person));
    out.truncate(limit);
    out
}

/// BI-6 "Zombies": persons who joined before `before` yet authored fewer
/// than one message per full month of membership, with their zombie score
/// (likes received from other zombies — the real BI workload's twist,
/// simplified to likes received).
#[derive(Debug, Clone, PartialEq)]
pub struct ZombieRow {
    /// The inactive account.
    pub person: PersonId,
    /// Months since the account was created (at `before`).
    pub months: i64,
    /// Messages ever authored.
    pub messages: u64,
    /// Likes their messages received anyway.
    pub likes_received: u64,
}

/// Run BI-6.
pub fn bi6_zombies(snap: &PinnedSnapshot<'_>, before: SimTime, limit: usize) -> Vec<ZombieRow> {
    let mut out = Vec::new();
    for p in 0..snap.person_slots() as u64 {
        let id = PersonId(p);
        let Some(person) = snap.person(id) else { continue };
        if person.creation_date >= before {
            continue;
        }
        let months = before.month_bucket() - person.creation_date.month_bucket();
        if months < 1 {
            continue;
        }
        let messages = snap.messages_of_iter(id).count();
        if (messages as i64) < months {
            let likes_received: u64 = snap
                .messages_of_iter(id)
                .map(|(m, _)| snap.likes_of_iter(MessageId(m)).count() as u64)
                .sum();
            out.push(ZombieRow { person: id, months, messages: messages as u64, likes_received });
        }
    }
    out.sort_by_key(|r| (std::cmp::Reverse(r.likes_received), r.person));
    out.truncate(limit);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_store::Store;
    use std::sync::OnceLock;

    struct Fixture {
        ds: snb_datagen::Dataset,
        store: Store,
    }

    fn fixture() -> &'static Fixture {
        static F: OnceLock<Fixture> = OnceLock::new();
        F.get_or_init(|| {
            let ds = snb_datagen::generate(
                snb_datagen::GeneratorConfig::with_persons(300).activity(0.4).seed(13),
            )
            .unwrap();
            let store = Store::new();
            store.load_full(&ds);
            Fixture { ds, store }
        })
    }

    #[test]
    fn bi1_covers_every_message_exactly_once() {
        let f = fixture();
        let snap = f.store.pinned();
        let rows = bi1_posting_summary(&snap);
        let total: u64 = rows.iter().map(|r| r.count).sum();
        assert_eq!(total, f.ds.message_count() as u64);
        let share: f64 = rows.iter().map(|r| r.share).sum();
        assert!((share - 1.0).abs() < 1e-9);
        // Years are within the simulation window.
        for r in &rows {
            assert!((2010..=2012).contains(&r.year), "year {}", r.year);
        }
        // Posts are longer than comments on average, per the text model.
        let post_avg: f64 =
            rows.iter().filter(|r| !r.is_comment).map(|r| r.avg_length).sum::<f64>()
                / rows.iter().filter(|r| !r.is_comment).count() as f64;
        let comment_avg: f64 =
            rows.iter().filter(|r| r.is_comment).map(|r| r.avg_length).sum::<f64>()
                / rows.iter().filter(|r| r.is_comment).count() as f64;
        assert!(post_avg > comment_avg);
    }

    #[test]
    fn bi2_diffs_match_manual_recount() {
        let f = fixture();
        let snap = f.store.pinned();
        let month = 14;
        let rows = bi2_tag_evolution(&snap, month, 5);
        assert!(!rows.is_empty());
        // Recount the top row from the raw dataset.
        let top = &rows[0];
        let dicts = Dictionaries::global();
        let tag_idx = dicts.tags.tag_by_name(&top.tag).unwrap() as u64;
        let count_in = |b: i64| -> u64 {
            f.ds.posts
                .iter()
                .map(|p| (p.creation_date, &p.tags))
                .chain(f.ds.comments.iter().map(|c| (c.creation_date, &c.tags)))
                .filter(|(d, tags)| {
                    d.month_bucket() == b && tags.iter().any(|t| t.raw() == tag_idx)
                })
                .count() as u64
        };
        assert_eq!(top.count_a, count_in(month));
        assert_eq!(top.count_b, count_in(month + 1));
    }

    #[test]
    fn bi3_counts_only_the_requested_country() {
        let f = fixture();
        let snap = f.store.pinned();
        // Use the most common message country.
        let mut by_country: HashMap<usize, usize> = HashMap::new();
        for p in &f.ds.posts {
            *by_country.entry(p.country).or_default() += 1;
        }
        let country = by_country.into_iter().max_by_key(|&(_, c)| c).unwrap().0;
        let rows = bi3_popular_topics(&snap, country, 10);
        assert!(!rows.is_empty());
        for w in rows.windows(2) {
            assert!(w[0].count >= w[1].count);
        }
        // The country's own cultural tags should rank near the top.
        let dicts = Dictionaries::global();
        let local: Vec<&str> = dicts
            .tags
            .country_tags(country)
            .iter()
            .map(|&t| dicts.tags.tag(t).name.as_str())
            .collect();
        assert!(
            rows.iter().take(4).any(|r| local.contains(&r.tag.as_str())),
            "no local tag in top-4 for country {country}: {rows:?}"
        );
    }

    #[test]
    fn bi4_totals_match_dataset() {
        let f = fixture();
        let snap = f.store.pinned();
        let rows = bi4_country_activity(&snap);
        let persons: u64 = rows.iter().map(|r| r.persons).sum();
        let messages: u64 = rows.iter().map(|r| r.messages).sum();
        assert_eq!(persons, f.ds.persons.len() as u64);
        assert_eq!(messages, f.ds.message_count() as u64);
    }

    #[test]
    fn bi5_experts_actually_write_about_the_topic() {
        let f = fixture();
        let snap = f.store.pinned();
        // Most used tag in the dataset.
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for p in &f.ds.posts {
            for t in &p.tags {
                *counts.entry(t.raw()).or_default() += 1;
            }
        }
        let tag = counts.into_iter().max_by_key(|&(_, c)| c).unwrap().0 as usize;
        let rows = bi5_topic_experts(&snap, tag, 10);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.messages > 0);
        }
        for w in rows.windows(2) {
            assert!(w[0].messages >= w[1].messages);
        }
    }

    #[test]
    fn bi6_zombies_are_genuinely_inactive() {
        let f = fixture();
        let snap = f.store.pinned();
        let before = SimTime::from_ymd(2012, 6, 1);
        let rows = bi6_zombies(&snap, before, 50);
        for r in &rows {
            assert!((r.messages as i64) < r.months);
            let created = snap.person(r.person).unwrap().creation_date;
            assert!(created < before);
        }
    }
}
