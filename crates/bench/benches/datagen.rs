//! Criterion micro-benchmarks for DATAGEN (behind Fig. 3b).

use criterion::{criterion_group, criterion_main, Criterion};
use snb_datagen::{generate, GeneratorConfig};

fn bench_datagen(c: &mut Criterion) {
    let mut group = c.benchmark_group("datagen");
    group.sample_size(10);
    group.bench_function("generate_500_persons_1_thread", |b| {
        b.iter(|| generate(GeneratorConfig::with_persons(500).threads(1)).unwrap().stats())
    });
    group.bench_function("generate_500_persons_4_threads", |b| {
        b.iter(|| generate(GeneratorConfig::with_persons(500).threads(4)).unwrap().stats())
    });
    group.finish();
}

criterion_group!(benches, bench_datagen);
criterion_main!(benches);
