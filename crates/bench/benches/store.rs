//! Criterion micro-benchmarks for the store: transactional insert
//! throughput and snapshot point-read latency.

use criterion::{criterion_group, criterion_main, Criterion};
use snb_bench::{bulk_store, dataset};
use snb_core::PersonId;

fn bench_store(c: &mut Criterion) {
    let ds = dataset(800);
    let updates = ds.update_stream();

    c.bench_function("store/replay_update_stream", |b| {
        b.iter_batched(
            || bulk_store(&ds),
            |store| {
                for u in &updates {
                    store.apply(&u.op).unwrap();
                }
                store
            },
            criterion::BatchSize::LargeInput,
        )
    });

    let store = bulk_store(&ds);
    c.bench_function("store/snapshot_point_reads", |b| {
        b.iter(|| {
            let snap = store.snapshot();
            let mut found = 0;
            for i in 0..200u64 {
                if snap.person(PersonId(i * 3 % ds.persons.len() as u64)).is_some() {
                    found += 1;
                }
            }
            found
        })
    });

    c.bench_function("store/friend_list_scan", |b| {
        let snap = store.snapshot();
        b.iter(|| {
            let mut total = 0;
            for i in 0..100u64 {
                total += snap.friends(PersonId(i % ds.persons.len() as u64)).len();
            }
            total
        })
    });
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
