//! Criterion micro-benchmarks for the driver's dependency-tracking hot path
//! (the synchronization whose cost §4.2's Sequential/Windowed modes avoid).

use criterion::{criterion_group, criterion_main, Criterion};
use snb_core::time::SimTime;
use snb_driver::dependency::Gds;

fn bench_dependency(c: &mut Criterion) {
    c.bench_function("driver/lds_initiate_complete", |b| {
        b.iter_batched(
            || Gds::new(4),
            |gds| {
                let s = gds.stream(0).clone();
                for t in 1..=1_000i64 {
                    s.initiate(SimTime(t));
                    s.complete(SimTime(t));
                }
                gds.gct()
            },
            criterion::BatchSize::SmallInput,
        )
    });

    c.bench_function("driver/gct_read_16_streams", |b| {
        let gds = Gds::new(16);
        for i in 0..16 {
            let s = gds.stream(i);
            s.initiate(SimTime(100 + i as i64));
        }
        b.iter(|| gds.gct())
    });
}

criterion_group!(benches, bench_dependency);
criterion_main!(benches);
