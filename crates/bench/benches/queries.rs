//! Criterion micro-benchmarks for representative complex reads on both
//! engines (the per-query numbers behind Table 6 and Fig. 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snb_bench::{bulk_store, dataset};
use snb_queries::{complex, Engine};

fn bench_queries(c: &mut Criterion) {
    let ds = dataset(1_000);
    let store = bulk_store(&ds);
    let bindings = snb_params::curated_bindings(&ds, 4);

    let mut group = c.benchmark_group("complex_reads");
    group.sample_size(10);
    for q in [2usize, 5, 9, 13] {
        for engine in [Engine::Intended, Engine::Naive] {
            group.bench_with_input(
                BenchmarkId::new(format!("q{q}"), engine.name()),
                &engine,
                |b, &engine| {
                    b.iter(|| {
                        let snap = store.pinned();
                        let mut rows = 0;
                        for binding in bindings.all(q) {
                            rows += complex::run_complex(&snap, engine, binding);
                        }
                        rows
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
