//! Criterion micro-benchmarks for the SNB-Algorithms workload kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use snb_algorithms::{
    average_clustering, bfs_levels, label_propagation, louvain_communities, pagerank, CsrGraph,
    PageRankConfig,
};
use snb_bench::dataset;

fn bench_algorithms(c: &mut Criterion) {
    let ds = dataset(1_500);
    let g = CsrGraph::from_dataset(&ds);
    let mut group = c.benchmark_group("algorithms");
    group.sample_size(10);
    group.bench_function("pagerank", |b| b.iter(|| pagerank(&g, &PageRankConfig::default())));
    group.bench_function("bfs", |b| b.iter(|| bfs_levels(&g, 0)));
    group.bench_function("label_propagation", |b| b.iter(|| label_propagation(&g, 20)));
    group.bench_function("louvain", |b| b.iter(|| louvain_communities(&g, 20)));
    group.bench_function("clustering", |b| b.iter(|| average_clustering(&g)));
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
