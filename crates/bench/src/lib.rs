//! # snb-bench
//!
//! Benchmark harness: one binary per table and figure of the paper's
//! evaluation (run with `cargo run -p snb-bench --release --bin <name>`),
//! plus Criterion micro-benchmarks in `benches/`. This library holds the
//! shared plumbing: dataset construction, timing, and table rendering.
//!
//! Absolute numbers will not match the paper (its systems ran on dual-Xeon
//! servers against Sparksee/Virtuoso); every binary prints the paper's
//! reference rows next to the measured ones so the *shape* can be compared.

use snb_datagen::{generate, Dataset, GeneratorConfig};
use snb_queries::{complex, ComplexQuery, Engine};
use snb_store::Store;
use std::time::{Duration, Instant};

/// Standard bench scale: ~SF0.1 in the paper's persons-per-SF mapping.
pub const BENCH_PERSONS: u64 = 2_000;

/// Generate a dataset of `persons` with bench-appropriate settings.
pub fn dataset(persons: u64) -> Dataset {
    generate(GeneratorConfig::with_persons(persons).threads(num_threads()).seed(42))
        .expect("generation")
}

/// Generate with a custom config.
pub fn dataset_with(config: GeneratorConfig) -> Dataset {
    generate(config).expect("generation")
}

/// A store loaded with the bulk part of `ds`.
pub fn bulk_store(ds: &Dataset) -> Store {
    let store = Store::new();
    store.bulk_load(ds);
    store
}

/// A store loaded with everything in `ds`.
pub fn full_store(ds: &Dataset) -> Store {
    let store = Store::new();
    store.load_full(ds);
    store
}

/// Available parallelism, capped at 8 for reproducible-ish runs.
pub fn num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8)
}

/// Wall-clock a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Mean execution time of a complex-query binding set on one engine.
pub fn mean_query_time(store: &Store, engine: Engine, bindings: &[ComplexQuery]) -> Duration {
    let mut total = Duration::ZERO;
    for q in bindings {
        let snap = store.pinned();
        let (_, d) = time(|| complex::run_complex(&snap, engine, q));
        total += d;
    }
    total / bindings.len().max(1) as u32
}

/// Per-binding execution times (for variance experiments).
pub fn query_times(store: &Store, engine: Engine, bindings: &[ComplexQuery]) -> Vec<Duration> {
    bindings
        .iter()
        .map(|q| {
            let snap = store.pinned();
            time(|| complex::run_complex(&snap, engine, q)).1
        })
        .collect()
}

/// Simple fixed-width table printer for experiment output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells.to_vec());
    }

    /// Render to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let joined: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            println!("  {}", joined.join("  "));
        };
        line(&self.headers);
        println!("  {}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
        for row in &self.rows {
            line(row);
        }
    }
}

/// One-line storage summary for bench stdout — shared by every extension
/// binary that reports memory (`ext_storage_footprint`, `ext_concurrent_rw`,
/// `ext_concurrent_load`) so the format stays greppable and identical.
pub fn storage_line(stats: &snb_store::StorageStats) -> String {
    format!(
        "bytes/entity: {:.0} B/person, {:.0} B/message; index {:.2} MB compact \
         vs {:.2} MB raw ({:.2}x)",
        stats.bytes_per_person(),
        stats.bytes_per_message(),
        stats.index.run_bytes as f64 / 1e6,
        stats.index.oracle_run_bytes as f64 / 1e6,
        stats.compression_ratio(),
    )
}

/// Format a duration in adaptive units.
pub fn fmt_duration(d: Duration) -> String {
    if d >= Duration::from_secs(1) {
        format!("{:.2}s", d.as_secs_f64())
    } else if d >= Duration::from_millis(1) {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.0}us", d.as_secs_f64() * 1e6)
    }
}

/// Coefficient of variation (stddev / mean) of durations.
pub fn coefficient_of_variation(samples: &[Duration]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let xs: Vec<f64> = samples.iter().map(|d| d.as_secs_f64()).collect();
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_without_panicking() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(&["1".into(), "2".into()]);
        t.print();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12us");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }

    #[test]
    fn cv_of_constant_samples_is_zero() {
        let xs = vec![Duration::from_millis(5); 10];
        assert!(coefficient_of_variation(&xs) < 1e-9);
        let mixed = vec![Duration::from_millis(1), Duration::from_millis(100)];
        assert!(coefficient_of_variation(&mixed) > 0.5);
    }
}
