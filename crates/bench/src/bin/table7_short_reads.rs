//! Table 7 — mean runtime of the 7 short read-only queries.

use snb_bench::{bulk_store, dataset, fmt_duration, time, Table};
use snb_core::{MessageId, PersonId};
use snb_queries::params::ShortQuery;
use snb_queries::short::run_short;

/// Paper Table 7, mean ms.
const SPARKSEE_SF10: [f64; 7] = [7.0, 9.0, 9.0, 8.0, 9.0, 9.0, 8.0];
const VIRTUOSO_SF300: [f64; 7] = [6.0, 147.0, 37.0, 7.0, 2.0, 1.0, 8.0];

fn main() {
    let ds = dataset(snb_bench::BENCH_PERSONS);
    let store = bulk_store(&ds);
    let snap = store.pinned();
    // Anchors: a busy person and a post with replies.
    let mut deg = vec![0u32; ds.persons.len()];
    for k in &ds.knows {
        deg[k.a.index()] += 1;
        deg[k.b.index()] += 1;
    }
    let person = PersonId(deg.iter().enumerate().max_by_key(|&(_, d)| d).unwrap().0 as u64);
    let message = ds
        .comments
        .iter()
        .map(|c| c.reply_to)
        .find(|m| m.raw() < ds.message_count() as u64)
        .unwrap_or(MessageId(0));

    let queries = [
        ShortQuery::S1(person),
        ShortQuery::S2(person),
        ShortQuery::S3(person),
        ShortQuery::S4(message),
        ShortQuery::S5(message),
        ShortQuery::S6(message),
        ShortQuery::S7(message),
    ];
    println!("Table 7: mean short-read runtime (1000 iterations each)\n");
    let mut t = Table::new(&["query", "ours", "Sparksee SF10 (ms)", "Virtuoso SF300 (ms)"]);
    for (i, q) in queries.iter().enumerate() {
        let (_, d) = time(|| {
            for _ in 0..1000 {
                run_short(&snap, q);
            }
        });
        t.row(&[
            format!("S{}", i + 1),
            fmt_duration(d / 1000),
            format!("{}", SPARKSEE_SF10[i]),
            format!("{}", VIRTUOSO_SF300[i]),
        ]);
    }
    t.print();
    println!("\npaper shape: all short reads orders of magnitude below complex reads");
}
