//! Table 9 — mean runtime of the 8 transactional update queries, measured
//! by replaying the full update stream through the driver.

use snb_bench::{bulk_store, dataset, fmt_duration, Table};
use snb_driver::{mix, run, DriverConfig, OpKind, StoreConnector};
use snb_queries::Engine;
use std::sync::Arc;

/// Paper Table 9, mean ms.
const SPARKSEE_SF10: [f64; 8] = [492.0, 309.0, 307.0, 239.0, 317.0, 190.0, 324.0, 273.0];
const VIRTUOSO_SF300: [f64; 8] = [35.0, 198.0, 85.0, 55.0, 16.0, 118.0, 141.0, 15.0];

const NAMES: [&str; 8] = [
    "addPerson",
    "addPostLike",
    "addCommentLike",
    "addForum",
    "addMembership",
    "addPost",
    "addComment",
    "addFriendship",
];

fn main() {
    let ds = dataset(snb_bench::BENCH_PERSONS);
    let items = mix::updates_only(&ds);
    let store = Arc::new(bulk_store(&ds));
    let conn = StoreConnector::new(Arc::clone(&store), Engine::Intended);
    let config = DriverConfig { partitions: snb_bench::num_threads(), ..DriverConfig::default() };
    let report = run(&items, &conn, &config).expect("replay");

    println!("Table 9: mean update runtime ({} operations replayed)\n", items.len());
    let mut t = Table::new(&[
        "update",
        "count",
        "mean",
        "p99",
        "Sparksee SF10 (ms)",
        "Virtuoso SF300 (ms)",
    ]);
    for u in 1..=8 {
        if let Some(s) = report.metrics.stats(OpKind::Update(u)) {
            t.row(&[
                format!("U{u} {}", NAMES[u - 1]),
                s.count.to_string(),
                fmt_duration(s.mean),
                fmt_duration(s.p99),
                format!("{}", SPARKSEE_SF10[u - 1]),
                format!("{}", VIRTUOSO_SF300[u - 1]),
            ]);
        }
    }
    t.print();
    println!(
        "\nthroughput: {:.0} updates/s across {} partitions",
        report.ops_per_second, config.partitions
    );
    println!("paper shape: all updates within one order of magnitude of each other");
}
