//! Table 2 — top-10 person.firstNames for persons located in Germany vs
//! China, demonstrating the location → firstName correlation (§2.1).

use snb_bench::{dataset, Table};
use snb_core::dict::names::Gender;
use snb_core::dict::Dictionaries;
use std::collections::HashMap;

/// The paper's Table 2 lists (SF=10).
const PAPER_DE: [&str; 10] =
    ["Karl", "Hans", "Wolfgang", "Fritz", "Rudolf", "Walter", "Franz", "Paul", "Otto", "Wilhelm"];
const PAPER_CN: [&str; 10] =
    ["Yang", "Chen", "Wei", "Lei", "Jun", "Jie", "Li", "Hao", "Lin", "Peng"];

fn top10(counts: &HashMap<&str, usize>) -> Vec<(String, usize)> {
    let mut v: Vec<(String, usize)> = counts.iter().map(|(k, v)| (k.to_string(), *v)).collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v.truncate(10);
    v
}

fn main() {
    let ds = dataset(20_000);
    let dicts = Dictionaries::global();
    let germany = dicts.places.country_by_name("Germany").unwrap();
    let china = dicts.places.country_by_name("China").unwrap();

    // The paper's lists are drawn from its (location, gender)-correlated
    // dictionary and are male-name dominated; we compare against the male
    // sub-population to make the correlation directly visible.
    let mut de: HashMap<&str, usize> = HashMap::new();
    let mut cn: HashMap<&str, usize> = HashMap::new();
    for p in ds.persons.iter().filter(|p| p.gender == Gender::Male) {
        if p.country == germany {
            *de.entry(p.first_name).or_default() += 1;
        } else if p.country == china {
            *cn.entry(p.first_name).or_default() += 1;
        }
    }

    println!("Table 2: top-10 male first names by location ({} persons)\n", ds.persons.len());
    let mut t = Table::new(&[
        "rank",
        "Germany (paper)",
        "Germany (ours)",
        "n",
        "China (paper)",
        "China (ours)",
        "n",
    ]);
    let de10 = top10(&de);
    let cn10 = top10(&cn);
    for i in 0..10 {
        t.row(&[
            format!("{}", i + 1),
            PAPER_DE[i].to_string(),
            de10.get(i).map(|x| x.0.clone()).unwrap_or_default(),
            de10.get(i).map(|x| x.1.to_string()).unwrap_or_default(),
            PAPER_CN[i].to_string(),
            cn10.get(i).map(|x| x.0.clone()).unwrap_or_default(),
            cn10.get(i).map(|x| x.1.to_string()).unwrap_or_default(),
        ]);
    }
    t.print();
    let de_hits = de10.iter().filter(|(n, _)| PAPER_DE.contains(&n.as_str())).count();
    let cn_hits = cn10.iter().filter(|(n, _)| PAPER_CN.contains(&n.as_str())).count();
    println!("\noverlap with paper's top-10: Germany {de_hits}/10, China {cn_hits}/10");
}
