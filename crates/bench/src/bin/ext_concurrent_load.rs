//! Extension — connection-concurrency load curve for the readiness-loop
//! server (PR 8): sweep 1 → `max_conns` simultaneous [`PipelinedClient`]
//! connections against an in-process `snb-net` server on loopback, once
//! with a read-heavy mix (short reads over valid dataset ids) and once
//! with a mixed read/update mix (10% independent `AddPerson` updates drawn
//! from a global id allocator, so pipelined updates never conflict).
//!
//! Reported per level: sustained QPS, request-latency P50/P90/P99, error
//! rate (the acceptance bar is zero errors at every level), and the leak
//! guards — `accepted − closed` drift after the level's clients hang up,
//! the `net.server.open_conns` gauge, and the process's open-fd count
//! (Linux). Writes `BENCH_concurrent_load.json` (consumed by
//! `ci/check_concurrent_load.py` and EXPERIMENTS.md).
//!
//! Usage: `cargo run -p snb-bench --release --bin ext_concurrent_load
//! [persons] [ops_per_conn] [max_conns]`

use snb_core::dict::names::Gender;
use snb_core::schema::Person;
use snb_core::time::SimTime;
use snb_core::update::UpdateOp;
use snb_core::{MessageId, PersonId, TagId};
use snb_driver::connector::{Operation, StoreConnector};
use snb_net::{PipelinedClient, Response, Server};
use snb_obs::{Json, LatencyHistogram};
use snb_queries::params::ShortQuery;
use snb_queries::Engine;
use snb_store::Store;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Requests each connection keeps in flight (must stay at or below the
/// server's `max_pipeline`, or the extra sends just queue client-side).
const WINDOW: usize = 8;

fn person(id: u64) -> Person {
    Person {
        id: PersonId(id),
        first_name: "Karl",
        last_name: "Muller",
        gender: Gender::Male,
        birthday: SimTime(0),
        creation_date: SimTime(id as i64),
        city: 0,
        country: 0,
        browser: "Chrome",
        location_ip: String::new(),
        languages: vec!["de"],
        emails: vec![],
        interests: vec![TagId(1)],
        study_at: None,
        work_at: vec![],
    }
}

/// First id past every dataset entity, so update ids never collide with
/// bulk-loaded rows.
fn id_floor(ds: &snb_datagen::Dataset) -> u64 {
    let persons = ds.persons.iter().map(|p| p.id.raw()).max().unwrap_or(0);
    let forums = ds.forums.iter().map(|f| f.id.raw()).max().unwrap_or(0);
    let posts = ds.posts.iter().map(|p| p.id.raw()).max().unwrap_or(0);
    let comments = ds.comments.iter().map(|c| c.id.raw()).max().unwrap_or(0);
    persons.max(forums).max(posts).max(comments) + 1
}

/// Open file descriptors of this process (Linux); 0 where /proc is absent.
fn open_fds() -> u64 {
    std::fs::read_dir("/proc/self/fd").map(|d| d.count() as u64).unwrap_or(0)
}

/// The `i`-th operation of a connection's request stream. Read-heavy: all
/// seven short-read kinds over valid dataset ids. Mixed: every 10th
/// request is an `AddPerson` with a globally unique id — independent of
/// every other in-flight request, so pipelining cannot create
/// intra-connection dependencies.
fn nth_op(
    i: u64,
    conn: u64,
    persons: &[PersonId],
    messages: &[MessageId],
    update_ids: Option<&AtomicU64>,
) -> Operation {
    if let Some(ids) = update_ids {
        if i % 10 == 9 {
            let id = ids.fetch_add(1, Ordering::Relaxed);
            return Operation::Update(UpdateOp::AddPerson(person(id)));
        }
    }
    let mix = i.wrapping_mul(7).wrapping_add(conn.wrapping_mul(13));
    let p = persons[(mix % persons.len() as u64) as usize];
    let m = messages[(mix % messages.len() as u64) as usize];
    match mix % 7 {
        0 => Operation::Short(ShortQuery::S1(p)),
        1 => Operation::Short(ShortQuery::S2(p)),
        2 => Operation::Short(ShortQuery::S3(p)),
        3 => Operation::Short(ShortQuery::S4(m)),
        4 => Operation::Short(ShortQuery::S5(m)),
        5 => Operation::Short(ShortQuery::S6(m)),
        _ => Operation::Short(ShortQuery::S7(m)),
    }
}

struct Level {
    conns: usize,
    total_ops: u64,
    errors: u64,
    wall: Duration,
    latency: LatencyHistogram,
    accepted: u64,
    closed: u64,
    open_conns: u64,
    pipeline_depth: u64,
    open_fds: u64,
}

/// Drive one concurrency level: `conns` client threads, each running
/// `ops_per_conn` requests through a windowed [`PipelinedClient`], then
/// wait for the server to reap every connection before reading the leak
/// counters.
#[allow(clippy::too_many_arguments)]
fn run_level(
    server: &Server,
    conns: usize,
    ops_per_conn: u64,
    persons: &[PersonId],
    messages: &[MessageId],
    update_ids: Option<&AtomicU64>,
) -> Level {
    let addr = server.local_addr().to_string();
    let latency = LatencyHistogram::new();
    let errors = AtomicU64::new(0);
    let accepted_before = server.metrics().connections.get();
    let closed_before = server.metrics().closed.get();

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for conn in 0..conns {
            let (addr, latency, errors) = (&addr, &latency, &errors);
            scope.spawn(move || {
                let mut client = PipelinedClient::connect(addr.clone()).expect("dial");
                // Correlation id -> send instant, for per-request latency.
                let mut sent: std::collections::HashMap<u64, Instant> =
                    std::collections::HashMap::with_capacity(WINDOW * 2);
                let mut next = 0u64;
                let recv_one =
                    |client: &mut PipelinedClient,
                     sent: &mut std::collections::HashMap<u64, Instant>| {
                        match client.recv() {
                            Ok((corr, response)) => {
                                if let Some(at) = sent.remove(&corr) {
                                    latency.record(at.elapsed().as_micros() as u64);
                                }
                                if matches!(response, Response::Error(_)) {
                                    errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Err(_) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    };
                while next < ops_per_conn || client.in_flight() > 0 {
                    while next < ops_per_conn && client.in_flight() < WINDOW {
                        let op = nth_op(next, conn as u64, persons, messages, update_ids);
                        match client.send(&op) {
                            Ok(corr) => {
                                sent.insert(corr, Instant::now());
                            }
                            Err(_) => {
                                // Poisoned connection: count every request
                                // that can no longer complete and bail.
                                errors.fetch_add(ops_per_conn - next, Ordering::Relaxed);
                                return;
                            }
                        }
                        next += 1;
                    }
                    if client.in_flight() > 0 {
                        recv_one(&mut client, &mut sent);
                    }
                }
            });
        }
    });
    let wall = t0.elapsed();

    // Leak guard: with every client dropped, the event loop must reap all
    // of this level's connections — poll until `closed` catches up.
    let reap_deadline = Instant::now() + Duration::from_secs(10);
    let accepted = server.metrics().connections.get() - accepted_before;
    loop {
        let closed = server.metrics().closed.get() - closed_before;
        if closed >= accepted || Instant::now() > reap_deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    Level {
        conns,
        total_ops: conns as u64 * ops_per_conn,
        errors: errors.load(Ordering::Relaxed),
        wall,
        latency,
        accepted,
        closed: server.metrics().closed.get() - closed_before,
        open_conns: server.metrics().open_conns.get(),
        pipeline_depth: server.metrics().pipeline_depth.get(),
        open_fds: open_fds(),
    }
}

fn level_json(l: &Level) -> Json {
    let qps = l.total_ops as f64 / l.wall.as_secs_f64().max(1e-9);
    Json::obj([
        ("conns", Json::from(l.conns as u64)),
        ("total_ops", Json::from(l.total_ops)),
        ("qps", Json::from(qps)),
        ("p50_micros", Json::from(l.latency.value_at_quantile(0.50))),
        ("p90_micros", Json::from(l.latency.value_at_quantile(0.90))),
        ("p99_micros", Json::from(l.latency.value_at_quantile(0.99))),
        ("errors", Json::from(l.errors)),
        ("error_rate", Json::from(l.errors as f64 / l.total_ops.max(1) as f64)),
        ("accepted", Json::from(l.accepted)),
        ("closed", Json::from(l.closed)),
        ("accepted_minus_closed", Json::from(l.accepted.saturating_sub(l.closed))),
        ("open_conns", Json::from(l.open_conns)),
        ("pipeline_depth", Json::from(l.pipeline_depth)),
        ("open_fds", Json::from(l.open_fds)),
        ("wall_secs", Json::from(l.wall.as_secs_f64())),
    ])
}

fn main() {
    let persons: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("persons must be a number"))
        .unwrap_or(1_000);
    let ops_per_conn: u64 = std::env::args()
        .nth(2)
        .map(|a| a.parse().expect("ops_per_conn must be a number"))
        .unwrap_or(200);
    let max_conns: usize = std::env::args()
        .nth(3)
        .map(|a| a.parse().expect("max_conns must be a number"))
        .unwrap_or(256);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("== ext_concurrent_load: connection sweep over the readiness-loop server ==");
    println!(
        "   persons={persons} ops_per_conn={ops_per_conn} max_conns={max_conns} \
         window={WINDOW} hw_threads={cores}"
    );

    let ds = snb_bench::dataset(persons);
    let person_ids: Vec<PersonId> = ds.persons.iter().map(|p| p.id).collect();
    let message_ids: Vec<MessageId> = ds.posts.iter().map(|p| p.id).collect();
    let update_ids = AtomicU64::new(id_floor(&ds));

    let store = Arc::new(Store::new());
    store.bulk_load(&ds);
    let connector = Arc::new(StoreConnector::new(Arc::clone(&store), Engine::Intended));
    let server = Server::bind("127.0.0.1:0", connector).expect("bind loopback server");

    let mut levels = Vec::new();
    let mut l = 1usize;
    while l <= max_conns {
        levels.push(l);
        l *= 2;
    }

    let mut mixes: Vec<Json> = Vec::new();
    for (mix_name, updates) in [("read_heavy", false), ("mixed_rw", true)] {
        println!("-- mix: {mix_name} --");
        let mut table = snb_bench::Table::new(&[
            "conns",
            "qps",
            "p50 us",
            "p90 us",
            "p99 us",
            "errors",
            "acc-closed",
            "open fds",
        ]);
        let mut rows: Vec<Json> = Vec::new();
        for &conns in &levels {
            let level = run_level(
                &server,
                conns,
                ops_per_conn,
                &person_ids,
                &message_ids,
                updates.then_some(&update_ids),
            );
            table.row(&[
                conns.to_string(),
                format!("{:.0}", level.total_ops as f64 / level.wall.as_secs_f64().max(1e-9)),
                level.latency.value_at_quantile(0.50).to_string(),
                level.latency.value_at_quantile(0.90).to_string(),
                level.latency.value_at_quantile(0.99).to_string(),
                level.errors.to_string(),
                level.accepted.saturating_sub(level.closed).to_string(),
                level.open_fds.to_string(),
            ]);
            rows.push(level_json(&level));
        }
        table.print();
        // The mixed_rw sweep grows the store, so the footprint line after
        // each mix shows what the applied updates cost resident.
        println!("   {}", snb_bench::storage_line(&store.pinned().storage_stats()));
        mixes.push(Json::obj([
            ("mix", Json::from(mix_name)),
            ("updates_every", Json::from(if updates { 10u64 } else { 0 })),
            ("levels", Json::Arr(rows)),
        ]));
    }

    server.shutdown();
    server.join();

    let doc = Json::obj([
        ("bench", Json::from("ext_concurrent_load")),
        ("persons", Json::from(persons)),
        ("ops_per_conn", Json::from(ops_per_conn)),
        ("max_conns", Json::from(max_conns as u64)),
        ("window", Json::from(WINDOW as u64)),
        ("hw_threads", Json::from(cores as u64)),
        ("mixes", Json::Arr(mixes)),
    ]);
    std::fs::write("BENCH_concurrent_load.json", doc.render_pretty(2)).expect("write json");
    println!("   wrote BENCH_concurrent_load.json");
}
