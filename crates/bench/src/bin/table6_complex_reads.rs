//! Table 6 — mean runtime of the 14 complex read-only queries.
//!
//! The paper compares Sparksee (SF10) and Virtuoso (SF300); we compare the
//! intended-plan engine and the naive scan engine on the same store. What
//! should reproduce: the *relative* cost ordering — Q3/Q6/Q9/Q14 among the
//! heaviest, Q8 among the cheapest — and intended <= naive per query.

use snb_bench::{bulk_store, dataset, fmt_duration, mean_query_time, Table};
use snb_queries::Engine;

/// Paper Table 6, mean ms.
const SPARKSEE_SF10: [f64; 14] =
    [20.0, 44.0, 441.0, 31.0, 100.0, 41.0, 11.0, 38.0, 3376.0, 194.0, 66.0, 177.0, 794.0, 2009.0];
const VIRTUOSO_SF300: [f64; 14] = [
    941.0, 1493.0, 4232.0, 1163.0, 2688.0, 16090.0, 1000.0, 32.0, 18464.0, 1257.0, 762.0, 1519.0,
    559.0, 742.0,
];

fn main() {
    let ds = dataset(snb_bench::BENCH_PERSONS);
    let store = bulk_store(&ds);
    let bindings = snb_params::curated_bindings(&ds, 8);

    println!(
        "Table 6: mean complex-read runtime ({} persons, {} messages bulk-loaded)\n",
        ds.persons.len(),
        ds.message_count()
    );
    let mut t = Table::new(&[
        "query",
        "intended",
        "naive",
        "naive/intended",
        "Sparksee SF10 (ms)",
        "Virtuoso SF300 (ms)",
    ]);
    for q in 1..=14 {
        let intended = mean_query_time(&store, Engine::Intended, bindings.all(q));
        let naive = mean_query_time(&store, Engine::Naive, bindings.all(q));
        t.row(&[
            format!("Q{q}"),
            fmt_duration(intended),
            fmt_duration(naive),
            format!("{:.1}x", naive.as_secs_f64() / intended.as_secs_f64().max(1e-9)),
            format!("{}", SPARKSEE_SF10[q - 1]),
            format!("{}", VIRTUOSO_SF300[q - 1]),
        ]);
    }
    t.print();
    println!("\npaper shape anchors: Q9 and Q3 heaviest, Q8 cheapest (index point lookup scale)");
}
