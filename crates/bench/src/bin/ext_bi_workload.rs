//! Extension — the SNB-BI draft workload (§1): scan-heavy analytical
//! queries over the same dataset, with runtimes contrasted against the
//! point-anchored Interactive reads.

use snb_bench::{dataset, fmt_duration, full_store, time, Table};
use snb_bi as bi;
use snb_core::time::SimTime;

fn main() {
    let ds = dataset(3_000);
    let store = full_store(&ds);
    let snap = store.pinned();
    println!("SNB-BI draft queries on {} messages\n", ds.message_count());

    let mut t = Table::new(&["query", "time", "rows", "highlight"]);

    let (r1, d1) = time(|| bi::bi1_posting_summary(&snap));
    let busiest = r1.iter().max_by_key(|r| r.count).unwrap();
    t.row(&[
        "BI1 posting summary".into(),
        fmt_duration(d1),
        r1.len().to_string(),
        format!(
            "{} {} in {}",
            busiest.count,
            if busiest.is_comment { "comments" } else { "posts" },
            busiest.year
        ),
    ]);

    let (r2, d2) = time(|| bi::bi2_tag_evolution(&snap, 20, 10));
    t.row(&[
        "BI2 tag evolution".into(),
        fmt_duration(d2),
        r2.len().to_string(),
        r2.first()
            .map(|r| format!("{}: {} -> {}", r.tag, r.count_a, r.count_b))
            .unwrap_or_default(),
    ]);

    let dicts = snb_core::dict::Dictionaries::global();
    let china = dicts.places.country_by_name("China").unwrap();
    let (r3, d3) = time(|| bi::bi3_popular_topics(&snap, china, 10));
    t.row(&[
        "BI3 topics in China".into(),
        fmt_duration(d3),
        r3.len().to_string(),
        r3.first().map(|r| format!("{} ({})", r.tag, r.count)).unwrap_or_default(),
    ]);

    let (r4, d4) = time(|| bi::bi4_country_activity(&snap));
    t.row(&[
        "BI4 country activity".into(),
        fmt_duration(d4),
        r4.len().to_string(),
        r4.first().map(|r| format!("{}: {} msgs", r.country, r.messages)).unwrap_or_default(),
    ]);

    let (r5, d5) = time(|| bi::bi5_topic_experts(&snap, 0, 10));
    t.row(&[
        "BI5 topic experts".into(),
        fmt_duration(d5),
        r5.len().to_string(),
        r5.first()
            .map(|r| format!("person {} with {} msgs", r.person.raw(), r.messages))
            .unwrap_or_default(),
    ]);

    let (r6, d6) = time(|| bi::bi6_zombies(&snap, SimTime::from_ymd(2012, 6, 1), 20));
    t.row(&[
        "BI6 zombies".into(),
        fmt_duration(d6),
        r6.len().to_string(),
        r6.first()
            .map(|r| {
                format!("person {} ({} msgs in {} months)", r.person.raw(), r.messages, r.months)
            })
            .unwrap_or_default(),
    ]);
    t.print();

    println!("\npaper shape: BI queries scan the fact tables (ms-scale here) while the");
    println!("Interactive reads touch 2-hop neighborhoods (µs-scale, see Table 6).");
}
