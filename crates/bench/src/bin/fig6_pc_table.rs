//! Fig. 6 — the Parameter-Count table and greedy window selection for the
//! Q2 intended plan (§4.1 "Parameter Curation at scale").

use snb_bench::{dataset, Table};
use snb_params::{curation, pc_table};

fn main() {
    let ds = dataset(snb_bench::BENCH_PERSONS);
    let stats = pc_table::person_stats(&ds);
    let pc = pc_table::pc_one_hop(&stats);
    let k = 10;
    let selected = curation::select(&pc, k);
    let sel_set: std::collections::HashSet<u64> = selected.iter().copied().collect();

    println!("Fig 6b: Parameter-Count table for Q2 (excerpt around the selected window)\n");
    // Show rows sorted by |join1| near the selected ones.
    let mut rows = pc.rows.clone();
    rows.sort_by_key(|(p, c)| (c[0], c[1], *p));
    let first_sel = rows.iter().position(|(p, _)| sel_set.contains(p)).unwrap_or(0);
    let lo = first_sel.saturating_sub(3);
    let mut t = Table::new(&["PersonID", "|join1| friends", "|join2| friend msgs", "selected"]);
    for (p, counts) in rows.iter().skip(lo).take(k + 8) {
        t.row(&[
            p.to_string(),
            counts[0].to_string(),
            counts[1].to_string(),
            if sel_set.contains(p) { "<==".into() } else { String::new() },
        ]);
    }
    t.print();
    let var = curation::selection_variance(&pc, &selected);
    println!("\nselected {k} bindings, total count variance {var:.1}");
    println!("paper shape: the greedy pass picks a run of rows with near-identical counts");
}
