//! Extension — the benchmark's headline metric (§4, Rules and Metrics):
//! "the acceleration-factor (simulation time/real time) that the system can
//! sustain". We search for the largest acceleration at which the driver
//! keeps pace (achieved ≥ 95% of target) with stable complex-read p99.

use snb_bench::dataset;
use snb_driver::{mix, run, DriverConfig, StoreConnector};
use snb_queries::Engine;
use std::sync::Arc;

fn attempt(ds: &snb_datagen::Dataset, items: &[snb_driver::WorkItem], accel: f64) -> (f64, bool) {
    let store = Arc::new(snb_bench::bulk_store(ds));
    let conn = StoreConnector::new(store, Engine::Intended);
    let config = DriverConfig {
        partitions: snb_bench::num_threads().max(2),
        acceleration: Some(accel),
        ..DriverConfig::default()
    };
    let report = run(items, &conn, &config).expect("run");
    (report.achieved_acceleration, report.steady)
}

fn main() {
    let ds = dataset(1_500);
    let bindings = snb_params::curated_bindings(&ds, 16);
    let all = mix::build_mix(&ds, &bindings);
    // A slice long enough to be meaningful, short enough to iterate.
    let items = &all[..all.len().min(40_000)];
    let sim_span = items.last().unwrap().due.since(items[0].due) as f64;
    println!(
        "searching max sustainable acceleration over {} ops ({:.1} simulated days)\n",
        items.len(),
        sim_span / 86_400_000.0
    );

    // Exponential probe upward, then report the knee.
    let mut accel = sim_span / 20_000.0; // start: ~20s of wall time
    let mut best = 0.0;
    for _ in 0..6 {
        let (achieved, steady) = attempt(&ds, items, accel);
        let sustained = achieved >= 0.95 * accel;
        println!(
            "  target {accel:>12.0}x -> achieved {achieved:>12.0}x  ({}{})",
            if sustained { "sustained" } else { "FELL BEHIND" },
            if steady { "" } else { ", p99 degraded" },
        );
        if sustained {
            best = accel;
            accel *= 4.0;
        } else {
            break;
        }
    }
    println!("\nmax sustained acceleration factor: {best:.0}x");
    println!("(the paper reports 0.1x for Sparksee/SF10 and 0.4x for Virtuoso/SF300 on");
    println!(" client-server systems; in-process execution sustains far higher factors)");
}
