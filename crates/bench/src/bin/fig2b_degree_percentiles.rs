//! Fig. 2b — maximum degree of each percentile of the (Facebook-shaped)
//! degree distribution DATAGEN discretizes (§2.3).

use snb_bench::Table;
use snb_core::degree::DegreeModel;

fn main() {
    let m = DegreeModel::facebook();
    println!("Fig 2b: max degree per percentile (paper: log axis, ~10 at p0 to ~1000+ at p100)\n");
    let mut t = Table::new(&["percentile", "max degree", "bar (log scale)"]);
    for p in (5..=100).step_by(5) {
        let d = m.max_degree_at_percentile(p);
        let bar = "#".repeat((d.ln() * 6.0) as usize);
        t.row(&[p.to_string(), format!("{d:.0}"), bar]);
    }
    t.print();
    println!(
        "\nunscaled mean degree (stands in for the Facebook average): {:.1}",
        m.unscaled_mean()
    );
    println!(
        "avg-degree law anchors: n=10k -> {:.1}, n=700M -> {:.1} (paper: ~200)",
        DegreeModel::avg_degree_for(10_000),
        DegreeModel::avg_degree_for(700_000_000)
    );
}
