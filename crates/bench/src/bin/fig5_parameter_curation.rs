//! Fig. 5 — why parameter curation: (a) the 2-hop environment size is
//! multimodal with enormous spread, so (b) uniformly sampled Q5 parameters
//! give wildly varying runtimes, while curated parameters collapse the
//! variance (properties P1/P2 of §4.1).

use snb_bench::{bulk_store, coefficient_of_variation, dataset, fmt_duration, query_times, Table};
use snb_params::{curated_bindings, pc_table, uniform_bindings};
use snb_queries::Engine;
use std::time::Duration;

fn main() {
    let ds = dataset(snb_bench::BENCH_PERSONS);
    let store = bulk_store(&ds);

    // ---- Fig 5a: distribution of 2-hop environment sizes --------------
    let stats = pc_table::person_stats(&ds);
    let sizes: Vec<u64> =
        stats.friends.iter().zip(&stats.friends_of_friends).map(|(a, b)| a + b).collect();
    let mut sorted = sizes.clone();
    sorted.sort_unstable();
    println!("Fig 5a: size of the 2-hop friend environment ({} persons)\n", sizes.len());
    let mut t = Table::new(&["percentile", "2-hop size"]);
    for p in [1, 10, 25, 50, 75, 90, 99, 100] {
        let idx = ((p as f64 / 100.0) * (sorted.len() - 1) as f64) as usize;
        t.row(&[format!("p{p}"), sorted[idx].to_string()]);
    }
    t.print();
    println!("\npaper shape: multimodal, >100x spread between small and large environments\n");

    // ---- Fig 5b: Q5 runtime distribution, uniform vs curated ----------
    let k = 20;
    let uniform = uniform_bindings(&ds, k, 7);
    let curated = curated_bindings(&ds, k);
    let t_uniform = query_times(&store, Engine::Intended, uniform.all(5));
    let t_curated = query_times(&store, Engine::Intended, curated.all(5));
    let summary = |ts: &[Duration]| {
        let min = ts.iter().min().copied().unwrap_or_default();
        let max = ts.iter().max().copied().unwrap_or_default();
        let mean = ts.iter().sum::<Duration>() / ts.len().max(1) as u32;
        (min, mean, max)
    };
    let (u_min, u_mean, u_max) = summary(&t_uniform);
    let (c_min, c_mean, c_max) = summary(&t_curated);
    println!("Fig 5b: Q5 runtime distribution over {k} parameter bindings\n");
    let mut t = Table::new(&["parameters", "min", "mean", "max", "max/min", "CV"]);
    t.row(&[
        "uniform".into(),
        fmt_duration(u_min),
        fmt_duration(u_mean),
        fmt_duration(u_max),
        format!("{:.0}x", u_max.as_secs_f64() / u_min.as_secs_f64().max(1e-9)),
        format!("{:.2}", coefficient_of_variation(&t_uniform)),
    ]);
    t.row(&[
        "curated".into(),
        fmt_duration(c_min),
        fmt_duration(c_mean),
        fmt_duration(c_max),
        format!("{:.0}x", c_max.as_secs_f64() / c_min.as_secs_f64().max(1e-9)),
        format!("{:.2}", coefficient_of_variation(&t_curated)),
    ]);
    t.print();

    println!("\nper-binding detail (curated):");
    for (q, d) in curated.all(5).iter().zip(&t_curated) {
        if let snb_queries::ComplexQuery::Q5(params) = q {
            let i = params.person.index();
            println!(
                "  person {:>5}  friends {:>4}  fof {:>5}  runtime {}",
                params.person.raw(),
                stats.friends[i],
                stats.friends_of_friends[i],
                fmt_duration(*d)
            );
        }
    }
    println!(
        "\npaper shape: uniform sampling spans >100x runtimes; curation bounds the variance (P1)"
    );
}
