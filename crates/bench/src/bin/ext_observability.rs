//! Extension — machine-readable full disclosure (§1: "The full disclosure
//! further breaks down the composition of the metric into its constituent
//! parts"). Runs the full interactive mix on a small dataset and prints the
//! JSON disclosure: per-query latency histograms, operator counters, store
//! MVCC/WAL counters, and per-partition scheduler accounting.
//!
//! Usage: `cargo run -p snb-bench --release --bin ext_observability [persons]`

use snb_driver::{full_disclosure_json, mix, run, DriverConfig, StoreConnector};
use snb_queries::Engine;
use std::sync::Arc;

fn main() {
    let persons: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("persons must be a number"))
        .unwrap_or(1_000);
    let ds = snb_bench::dataset(persons);
    let bindings = snb_params::curated_bindings(&ds, 8);
    let items = mix::build_mix(&ds, &bindings);
    let store = Arc::new(snb_bench::bulk_store(&ds));
    let conn = StoreConnector::new(store, Engine::Intended);
    let config =
        DriverConfig { partitions: snb_bench::num_threads().max(2), ..DriverConfig::default() };
    let report = run(&items, &conn, &config).expect("run");
    println!("{}", full_disclosure_json(&report).render_pretty(2));
}
