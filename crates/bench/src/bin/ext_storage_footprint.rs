//! Extension — storage footprint of the compact run format, at two scales.
//!
//! Loads a mixed store (bulk + full update stream) and reports what the
//! index layer actually holds resident: compact run bytes (anchors + block
//! streams) next to the uncompressed cost of the same runs (plain 24-byte
//! entries, as the pre-compact format stored them), plus bytes-per-person /
//! bytes-per-message in the spirit of the paper's Table 8.
//!
//! The read-path cost of compression is an honest A/B over the store
//! itself: a second `Store` is built from the same dataset and update
//! stream under [`snb_store::set_uncompressed_runs`], so both sides share
//! every line of MVCC, ladder, iterator, and query-plan code — only the
//! physical run representation differs. Both sides are asserted
//! row-identical on every curated binding before anything is timed, and
//! the uncompressed store's *measured* run bytes are checked against the
//! compact store's analytic oracle accounting (24 B x entries).
//!
//! Writes `BENCH_storage_footprint.json` (consumed by
//! `ci/check_storage_footprint.py` and EXPERIMENTS.md).
//!
//! Usage: `cargo run -p snb-bench --release --bin ext_storage_footprint \
//! [persons_a] [persons_b] [iters]`

use snb_obs::Json;
use snb_queries::params::{Q2Params, Q6Params, Q9Params};
use snb_queries::{complex, Engine};
use snb_store::{set_uncompressed_runs, StorageStats, Store};
use std::time::Instant;

/// One measured side of the complex mix.
struct Measure {
    ops_per_s: f64,
    micros_per_op: f64,
}

/// Measure both sides of an A/B strictly interleaved — one call of each
/// side per alternation — until each side has accumulated `secs` of
/// samples. Single-op alternation matters: machine-level drift (frequency
/// scaling, noisy neighbours) changes on a tens-of-milliseconds scale, so
/// coarse batches let a dip land entirely on one side; adjacent single
/// calls see the same machine state and the drift cancels in the ratio.
fn measure_pair(
    secs: f64,
    mut fa: impl FnMut() -> usize,
    mut fb: impl FnMut() -> usize,
) -> (Measure, Measure) {
    std::hint::black_box(fa()); // warm-up
    std::hint::black_box(fb());
    let mut sink = 0usize;
    let (mut dt_a, mut dt_b) = (0f64, 0f64);
    let mut n = 0u64;
    while n == 0 || dt_a < secs || dt_b < secs {
        let t0 = Instant::now();
        sink = sink.wrapping_add(fa());
        let t1 = Instant::now();
        sink = sink.wrapping_add(fb());
        dt_a += (t1 - t0).as_secs_f64();
        dt_b += t1.elapsed().as_secs_f64();
        n += 1;
    }
    std::hint::black_box(sink);
    let m = |dt: f64| Measure { ops_per_s: n as f64 / dt, micros_per_op: dt * 1e6 / n as f64 };
    (m(dt_a), m(dt_b))
}

struct ScaleResult {
    persons: u64,
    stats: StorageStats,
    compact: Measure,
    uncompressed: Measure,
    json: Json,
}

/// Bulk-load plus the full update stream as versioned commits, so the
/// ladder holds real merged runs on both sides.
fn build_store(ds: &snb_datagen::Dataset) -> Store {
    let store = Store::new();
    store.bulk_load(ds);
    for u in ds.update_stream() {
        store.apply(&u.op).unwrap();
    }
    store
}

fn run_scale(persons: u64, secs: f64) -> ScaleResult {
    println!("-- scale: {persons} persons --");
    let ds = snb_bench::dataset(persons);
    let store = build_store(&ds);
    // The A/B baseline: the identical store built with plain-entry runs.
    set_uncompressed_runs(true);
    let baseline = build_store(&ds);
    set_uncompressed_runs(false);

    let bindings = snb_params::curated_bindings(&ds, 8);
    let pick = |n: usize| bindings.all(n).to_vec();
    let q2s: Vec<Q2Params> = pick(2)
        .iter()
        .filter_map(|q| match q {
            snb_queries::ComplexQuery::Q2(p) => Some(*p),
            _ => None,
        })
        .collect();
    let q6s: Vec<Q6Params> = pick(6)
        .iter()
        .filter_map(|q| match q {
            snb_queries::ComplexQuery::Q6(p) => Some(p.clone()),
            _ => None,
        })
        .collect();
    let q9s: Vec<Q9Params> = pick(9)
        .iter()
        .filter_map(|q| match q {
            snb_queries::ComplexQuery::Q9(p) => Some(*p),
            _ => None,
        })
        .collect();
    assert!(!q2s.is_empty() && !q6s.is_empty() && !q9s.is_empty(), "curation produced bindings");

    // Differential check before timing anything: the same query code over
    // packed and plain runs must return byte-identical rows.
    {
        let a = store.pinned();
        let b = baseline.pinned();
        for p in &q2s {
            assert_eq!(
                complex::q2::run(&a, Engine::Intended, p),
                complex::q2::run(&b, Engine::Intended, p)
            );
        }
        for p in &q6s {
            assert_eq!(
                complex::q6::run(&a, Engine::Intended, p),
                complex::q6::run(&b, Engine::Intended, p)
            );
        }
        for p in &q9s {
            assert_eq!(
                complex::q9::run(&a, Engine::Intended, p),
                complex::q9::run(&b, Engine::Intended, p)
            );
        }
    }
    println!("   differential check: compact == uncompressed store on all bindings");

    // The read-path acceptance metric: the complex mix over each store.
    // Snapshots are pinned per mix pass, matching the driver connector.
    let mix = |st: &Store| {
        let snap = st.pinned();
        let mut rows = 0;
        for p in &q2s {
            rows += complex::q2::run(&snap, Engine::Intended, p).len();
        }
        for p in &q6s {
            rows += complex::q6::run(&snap, Engine::Intended, p).len();
        }
        for p in &q9s {
            rows += complex::q9::run(&snap, Engine::Intended, p).len();
        }
        rows
    };
    let (compact, uncompressed) = measure_pair(secs, || mix(&store), || mix(&baseline));

    // Per-query breakdown of the same A/B, for disclosure.
    for (name, run) in [
        (
            "q2",
            &(|st: &Store| {
                let snap = st.pinned();
                q2s.iter().map(|p| complex::q2::run(&snap, Engine::Intended, p).len()).sum()
            }) as &dyn Fn(&Store) -> usize,
        ),
        ("q6", &|st: &Store| {
            let snap = st.pinned();
            q6s.iter().map(|p| complex::q6::run(&snap, Engine::Intended, p).len()).sum()
        }),
        ("q9", &|st: &Store| {
            let snap = st.pinned();
            q9s.iter().map(|p| complex::q9::run(&snap, Engine::Intended, p).len()).sum()
        }),
    ] {
        let (c, u) = measure_pair(secs, || run(&store), || run(&baseline));
        println!(
            "   {name}: {:.1} ops/s compact vs {:.1} ops/s uncompressed ({:.2}x)",
            c.ops_per_s,
            u.ops_per_s,
            c.ops_per_s / u.ops_per_s
        );
    }

    store.refresh_mem_gauges();
    let stats = store.pinned().storage_stats();
    let base_stats = baseline.pinned().storage_stats();
    let dict_bytes = snb_core::dict::Dictionaries::global().heap_bytes();
    let ops_ratio = compact.ops_per_s / uncompressed.ops_per_s;

    // Cross-check the analytic oracle accounting (24 B x entries) against
    // the bytes the uncompressed store actually holds in its runs.
    assert_eq!(
        stats.index.oracle_run_bytes, base_stats.index.run_bytes,
        "analytic oracle bytes match the measured uncompressed store"
    );

    println!("   {}", snb_bench::storage_line(&stats));
    println!(
        "   complex mix: {:.1} ops/s compact vs {:.1} ops/s uncompressed ({:.2}x)",
        compact.ops_per_s, uncompressed.ops_per_s, ops_ratio
    );

    let per_index: Vec<Json> = stats
        .per_index
        .iter()
        .map(|(name, f)| {
            Json::obj([
                ("name", Json::from(*name)),
                ("entries", Json::from(f.entries as u64)),
                ("run_bytes", Json::from(f.run_bytes as u64)),
                ("oracle_run_bytes", Json::from(f.oracle_run_bytes as u64)),
                ("tail_bytes", Json::from(f.tail_bytes as u64)),
                ("compression_ratio", Json::from(f.compression_ratio())),
            ])
        })
        .collect();
    let side = |m: &Measure| {
        Json::obj([
            ("ops_per_s", Json::from(m.ops_per_s)),
            ("micros_per_op", Json::from(m.micros_per_op)),
        ])
    };
    let json = Json::obj([
        ("persons", Json::from(persons)),
        ("messages", Json::from(stats.messages as u64)),
        ("index_entries", Json::from(stats.index.entries as u64)),
        ("run_bytes", Json::from(stats.index.run_bytes as u64)),
        ("oracle_run_bytes", Json::from(stats.index.oracle_run_bytes as u64)),
        ("uncompressed_run_bytes", Json::from(base_stats.index.run_bytes as u64)),
        ("tail_bytes", Json::from(stats.index.tail_bytes as u64)),
        ("entity_bytes", Json::from(stats.entity_bytes as u64)),
        ("dict_bytes", Json::from(dict_bytes as u64)),
        ("compression_ratio", Json::from(stats.compression_ratio())),
        ("bytes_per_person", Json::from(stats.bytes_per_person())),
        ("bytes_per_message", Json::from(stats.bytes_per_message())),
        ("per_index", Json::Arr(per_index)),
        ("compact", side(&compact)),
        ("uncompressed", side(&uncompressed)),
        ("ops_ratio", Json::from(ops_ratio)),
    ]);
    ScaleResult { persons, stats, compact, uncompressed, json }
}

fn main() {
    let arg = |n: usize| std::env::args().nth(n).map(|a| a.parse().expect("numeric argument"));
    let scale_a: u64 = arg(1).unwrap_or(1_000);
    let scale_b: u64 = arg(2).unwrap_or(3_000);
    let secs: f64 = arg(3).map(|s: u64| s as f64).unwrap_or(2.0);
    println!("== ext_storage_footprint: compact runs vs uncompressed store ==");
    println!("   scales={scale_a},{scale_b} secs-per-side={secs}");

    let results = [run_scale(scale_a, secs), run_scale(scale_b, secs)];

    let mut table = snb_bench::Table::new(&[
        "persons",
        "index MB",
        "raw MB",
        "ratio",
        "B/person",
        "B/message",
        "compact ops/s",
        "uncompressed ops/s",
        "ops ratio",
    ]);
    for r in &results {
        table.row(&[
            r.persons.to_string(),
            format!("{:.2}", r.stats.index.run_bytes as f64 / 1e6),
            format!("{:.2}", r.stats.index.oracle_run_bytes as f64 / 1e6),
            format!("{:.2}x", r.stats.compression_ratio()),
            format!("{:.0}", r.stats.bytes_per_person()),
            format!("{:.0}", r.stats.bytes_per_message()),
            format!("{:.1}", r.compact.ops_per_s),
            format!("{:.1}", r.uncompressed.ops_per_s),
            format!("{:.2}x", r.compact.ops_per_s / r.uncompressed.ops_per_s),
        ]);
    }
    table.print();

    let min_ratio =
        results.iter().map(|r| r.stats.compression_ratio()).fold(f64::INFINITY, f64::min);
    let min_ops_ratio = results
        .iter()
        .map(|r| r.compact.ops_per_s / r.uncompressed.ops_per_s)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\n   min compression ratio: {min_ratio:.2}x; min complex-mix ops ratio: \
         {min_ops_ratio:.2}x (compact / uncompressed)"
    );

    let doc = Json::obj([
        ("bench", Json::from("ext_storage_footprint")),
        ("secs_per_side", Json::from(secs)),
        ("scales", Json::Arr(results.iter().map(|r| r.json.clone()).collect())),
        ("min_compression_ratio", Json::from(min_ratio)),
        ("min_ops_ratio", Json::from(min_ops_ratio)),
    ]);
    std::fs::write("BENCH_storage_footprint.json", doc.render_pretty(2)).expect("write json");
    println!("   wrote BENCH_storage_footprint.json");
}
