//! Extension — durability vs. throughput, and parallel sorted bulk load.
//!
//! The paper's §4 ACID rules require acknowledged updates to survive a
//! crash, and treat bulk-load time as a reported benchmark dimension. This
//! binary measures both halves of that contract on the in-workspace store:
//!
//! 1. **Bulk load scaling** — wall time to build the full store (tables +
//!    every date-ordered index) with the serial `sorted_insert` path vs.
//!    the parallel sort-once loader at 2/4/8 threads, on the largest
//!    in-repo scale.
//! 2. **Update durability cost** — sustained update throughput and
//!    acknowledgment p99 under `SyncPolicy::Never` (page cache only, the
//!    pre-v2 behaviour), `GroupCommit` (commits acknowledged only after
//!    their batch is fsynced), and `EveryCommit` (each durability barrier
//!    pays its own fsync), with fsync counts, mean commit-group sizes, and
//!    fsync latency from the store's own counters. Workers use the store's
//!    pipelined commit API (`apply_async` + `wait_durable`): operations
//!    become visible immediately, and a window of them is acknowledged
//!    through one durability barrier, the way a real server overlaps WAL
//!    syncs with request processing.
//!
//! Every configuration is measured several times and the best trial is
//! reported — this benchmark's reference machine is a shared-host VM whose
//! available CPU swings over minutes-long episodes, and best-of-N with the
//! same N for every configuration is the fair way to compare under that
//! noise. Trials are round-robin interleaved across configurations so no
//! configuration's whole trial block lands inside one slow episode.
//!
//! Acceptance shape: parallel load ≥ 2x serial at ≥ 4 threads with
//! identical query results (the identity is enforced by the test suite);
//! group commit within 25% of `Never` while every acknowledged commit is
//! durable.

use snb_bench::{dataset, fmt_duration, time, Table};
use snb_core::update::StreamKey;
use snb_obs::LatencyHistogram;
use snb_store::{Store, SyncPolicy};
use std::time::{Duration, Instant};

/// Best-of-N trials per measured configuration (see module docs). The
/// durability trials are much cheaper than the load trials, so they get
/// more shots at a quiet host episode.
const LOAD_TRIALS: usize = 3;
const COMMIT_TRIALS: usize = 5;

/// Largest scale used anywhere in the repo's benches (table2 runs 20 000
/// persons); override with SNB_LOAD_PERSONS for quicker smoke runs.
fn load_persons() -> u64 {
    std::env::var("SNB_LOAD_PERSONS").ok().and_then(|v| v.parse().ok()).unwrap_or(20_000)
}

fn main() {
    load_scaling();
    println!();
    update_durability();
}

fn load_scaling() {
    let persons = load_persons();
    let (ds, gen_time) = time(|| dataset(persons));
    let entities = ds.persons.len()
        + ds.knows.len()
        + ds.forums.len()
        + ds.memberships.len()
        + ds.posts.len()
        + ds.comments.len()
        + ds.likes.len();
    println!(
        "bulk load scaling: {persons} persons, {entities} entities \
         (generated in {}; best of {LOAD_TRIALS} trials per thread count)\n",
        fmt_duration(gen_time)
    );

    let configs = [1usize, 2, 4, 8];
    let mut best = [Duration::MAX; 4];
    for _ in 0..LOAD_TRIALS {
        for (slot, &threads) in configs.iter().enumerate() {
            let (_, wall) = time(|| {
                let store = Store::new();
                store.bulk_load_until_threads(&ds, ds.config.end, threads);
                store
            });
            best[slot] = best[slot].min(wall);
        }
    }
    let serial = best[0];
    let mut t = Table::new(&["loader threads", "load time", "speedup vs serial", "Mentities/s"]);
    let rate = |d: Duration| entities as f64 / d.as_secs_f64() / 1e6;
    let (mut best_speedup, mut best_threads) = (0.0f64, 0usize);
    for (slot, &threads) in configs.iter().enumerate() {
        let par = best[slot];
        let speedup = serial.as_secs_f64() / par.as_secs_f64();
        if threads >= 4 && speedup > best_speedup {
            (best_speedup, best_threads) = (speedup, threads);
        }
        t.row(&[
            if threads == 1 { "1 (serial)".into() } else { threads.to_string() },
            fmt_duration(par),
            format!("{speedup:.2}x"),
            format!("{:.2}", rate(par)),
        ]);
    }
    t.print();
    println!(
        "\nacceptance: parallel load at >= 4 threads reaches {best_speedup:.2}x serial \
         (at {best_threads} threads; target >= 2x) {}",
        if best_speedup >= 2.0 { "PASS" } else { "MISS" }
    );
    println!("(identical-results contract: tests/recovery.rs + workspace end_to_end suite)");
}

/// Pack the update stream's causal streams (per-forum, plus the person
/// stream) onto `threads` workers, largest stream first (LPT). Intra-stream
/// order is preserved — each worker replays its queue in due order — so
/// same-stream dependencies (comment → parent post, like → message) hold by
/// construction; the only cross-stream references are to concurrently
/// created persons, which workers retry until visible.
fn pack_streams(updates: &[snb_core::update::ScheduledUpdate], threads: usize) -> Vec<Vec<usize>> {
    use std::collections::HashMap;
    let mut groups: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, u) in updates.iter().enumerate() {
        let key = match u.stream {
            StreamKey::Person => u64::MAX,
            StreamKey::Forum(f) => f,
        };
        groups.entry(key).or_default().push(i);
    }
    let mut sized: Vec<(u64, Vec<usize>)> = groups.into_iter().collect();
    sized.sort_by_key(|(key, g)| (std::cmp::Reverse(g.len()), *key));
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); threads];
    for (_, g) in sized {
        let t = (0..threads).min_by_key(|&t| queues[t].len()).unwrap();
        queues[t].extend(g);
    }
    for q in &mut queues {
        q.sort_unstable(); // stream indices ascend in due order
    }
    queues
}

/// One measured replay of `updates` against a fresh store under `policy`.
struct Trial {
    ops_per_second: f64,
    p50: u64,
    p99: u64,
    fsyncs: u64,
    group_size: u64,
    fsync_p99: Option<u64>,
}

fn run_trial(
    ds: &snb_datagen::Dataset,
    updates: &[snb_core::update::ScheduledUpdate],
    queues: &[Vec<usize>],
    policy: SyncPolicy,
    path: &std::path::Path,
) -> Trial {
    let store = Store::with_wal_policy(path, policy).expect("wal create failed");
    store.bulk_load(ds);
    let hist = LatencyHistogram::new();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for (k, q) in queues.iter().enumerate() {
            let (store, hist) = (&store, &hist);
            s.spawn(move || {
                // Pipelined commit: apply (visible at once, so later ops
                // in this stream can proceed), acknowledge a window of
                // commits at a time through one durability barrier —
                // `wait_durable` is a horizon, so the newest sequence
                // number covers the whole window. The window scales with
                // the queue so every worker pays a similar number of
                // barriers — the longest queue (the person stream, which
                // everything else depends on) is the critical path and
                // must not pay a sync round per fixed-size window. The
                // first window is additionally staggered per worker so
                // the barriers desynchronize — lockstep workers would
                // convoy on every sync round, something asynchronous
                // request arrival prevents in a real server.
                let pipe = (q.len() / 24).clamp(64, 2048);
                let mut cap = (pipe * (k + 1) / queues.len().max(1)).max(1);
                let mut window: Vec<(Option<u64>, Instant)> = Vec::with_capacity(pipe);
                let ack = |w: &mut Vec<(Option<u64>, Instant)>| {
                    if let Some(&(seq, _)) = w.last() {
                        store.wait_durable(seq).expect("wal sync failed");
                        for (_, started) in w.drain(..) {
                            hist.record(started.elapsed().as_micros() as u64);
                        }
                    }
                };
                for &idx in q {
                    let op = &updates[idx].op;
                    let t = Instant::now();
                    // Retry while a cross-stream dependency (a person
                    // created on another worker) is not yet visible.
                    let seq = loop {
                        match store.apply_async(op) {
                            Ok(seq) => break seq,
                            Err(_) => {
                                assert!(
                                    t.elapsed() < Duration::from_secs(60),
                                    "update {idx} stuck on a dependency"
                                );
                                std::thread::yield_now();
                            }
                        }
                    };
                    window.push((seq, t));
                    if window.len() >= cap {
                        ack(&mut window);
                        cap = pipe;
                    }
                }
                ack(&mut window);
            });
        }
    });
    let wall = t0.elapsed();
    let c = store.counters();
    let trial = Trial {
        ops_per_second: updates.len() as f64 / wall.as_secs_f64(),
        p50: hist.value_at_quantile(0.50),
        p99: hist.value_at_quantile(0.99),
        fsyncs: c.wal_fsyncs.get(),
        group_size: c.wal_group_size.get(),
        fsync_p99: if c.wal_fsync_micros.is_empty() {
            None
        } else {
            Some(c.wal_fsync_micros.value_at_quantile(0.99))
        },
    };
    drop(store);
    let _ = std::fs::remove_file(path);
    trial
}

fn update_durability() {
    let ds = dataset(2_000);
    let stream = ds.update_stream();
    let take = stream.len().min(100_000);
    let updates = &stream[..take];
    // Group commit amortizes one fsync over every commit in flight, so its
    // throughput scales with the number of concurrent unacknowledged
    // commits: each worker keeps a deep pipeline of applied-but-unacked
    // operations and acknowledges them through a shared durability barrier.
    // The driver's dependency-tracking cost is a separate story
    // (ext_sync_modes, ext_acceleration_metric); here the store's commit
    // path itself is the subject, so the appliers are plain threads
    // replaying causal streams.
    let threads = 16;
    let queues = pack_streams(updates, threads);
    println!(
        "update durability: {} update txns replayed over {threads} causal-stream workers \
         (best of {COMMIT_TRIALS} trials per policy)\n",
        updates.len()
    );

    let policies: [(&str, SyncPolicy); 4] = [
        ("never", SyncPolicy::Never),
        ("group (delay 0)", SyncPolicy::default()),
        (
            "group:64:500",
            SyncPolicy::GroupCommit { max_batch: 64, max_delay: Duration::from_micros(500) },
        ),
        ("every-commit", SyncPolicy::EveryCommit),
    ];
    let mut t = Table::new(&[
        "sync policy",
        "ops/s",
        "commit p50",
        "commit p99",
        "fsyncs",
        "mean group",
        "fsync p99",
    ]);
    let mut baseline = 0.0f64;
    let mut group_rate = 0.0f64;
    let mut trials: Vec<Vec<Trial>> = policies.iter().map(|_| Vec::new()).collect();
    for _ in 0..COMMIT_TRIALS {
        for (i, (_, policy)) in policies.iter().enumerate() {
            let path = std::env::temp_dir()
                .join(format!("snb-ext-load-commit-{}-{i}.wal", std::process::id()));
            trials[i].push(run_trial(&ds, updates, &queues, *policy, &path));
        }
    }
    for (i, (name, _policy)) in policies.iter().enumerate() {
        let best = trials[i]
            .drain(..)
            .max_by(|a, b| a.ops_per_second.total_cmp(&b.ops_per_second))
            .unwrap();
        if i == 0 {
            baseline = best.ops_per_second;
        }
        if matches!(policies[i].1, SyncPolicy::GroupCommit { .. }) {
            group_rate = group_rate.max(best.ops_per_second);
        }
        let mean_group = if best.fsyncs == 0 {
            "-".to_string()
        } else {
            format!("{:.1}", best.group_size as f64 / best.fsyncs as f64)
        };
        t.row(&[
            name.to_string(),
            format!("{:.0}", best.ops_per_second),
            format!("{}us", best.p50),
            format!("{}us", best.p99),
            best.fsyncs.to_string(),
            mean_group,
            best.fsync_p99.map_or_else(|| "-".to_string(), |v| format!("{v}us")),
        ]);
    }
    t.print();
    let ratio = group_rate / baseline;
    println!(
        "\nacceptance: group commit (best config) sustains {:.0}% of SyncPolicy::Never \
         throughput (target >= 75%) {}",
        ratio * 100.0,
        if ratio >= 0.75 { "PASS" } else { "MISS" }
    );
    println!("every acknowledged commit under group/every-commit is fsynced before return.");
}
