//! Table 4 — frequency of complex read-only queries (one execution per N
//! update operations), plus the realized mix on a generated update stream.

use snb_bench::{dataset, Table};
use snb_driver::mix::{build_mix, scaled_frequencies, TABLE4_FREQUENCIES};
use snb_driver::Operation;

fn main() {
    let ds = dataset(2_000);
    let bindings = snb_params::curated_bindings(&ds, 20);
    let mix = build_mix(&ds, &bindings);
    let updates = mix.iter().filter(|w| matches!(w.op, Operation::Update(_))).count();
    let scaled = scaled_frequencies(ds.config.n_persons);

    println!("Table 4: complex-read frequencies (number of updates per execution)\n");
    let mut t = Table::new(&["query", "paper freq", "scaled freq", "executions", "per updates"]);
    for q in 1..=14 {
        let count = mix
            .iter()
            .filter(|w| matches!(&w.op, Operation::Complex(c) if c.number() == q))
            .count();
        t.row(&[
            format!("Q{q}"),
            TABLE4_FREQUENCIES[q - 1].to_string(),
            scaled[q - 1].to_string(),
            count.to_string(),
            updates.checked_div(count).map(|v| v.to_string()).unwrap_or_else(|| "-".into()),
        ]);
    }
    t.print();
    println!("\nupdate operations in stream: {updates}");
    println!("total scheduled operations:  {}", mix.len());
}
