//! Table 5 — driver scalability: operations/second versus partition count
//! with the dummy sleep connector (§4.2, "Scalable Dependent Execution").
//!
//! Paper (12-core Xeon, SF10 stream):
//!   partitions:  1     2     4     8     12
//!   1ms:         997   1990  3969  7836  11298
//!   100us:       9745  19245 38285 78913 110837

use snb_bench::{dataset, Table};
use snb_driver::{mix, run, DriverConfig, SleepConnector};
use std::time::Duration;

fn main() {
    let ds = dataset(3_000);
    let items = mix::updates_only(&ds);
    println!(
        "Table 5: driver throughput vs partitions ({} update ops, {} user ops)\n",
        items.len(),
        items
            .iter()
            .filter(|w| matches!(
                &w.op,
                snb_driver::Operation::Update(snb_core::update::UpdateOp::AddPerson(_))
            ))
            .count()
    );
    let paper_1ms = [997.0, 1990.0, 3969.0, 7836.0, 11298.0];
    let paper_100us = [9745.0, 19245.0, 38285.0, 78913.0, 110837.0];
    let partition_counts = [1usize, 2, 4, 8, 12];

    for (label, sleep, paper) in [
        ("1ms", Duration::from_millis(1), paper_1ms),
        ("100us", Duration::from_micros(100), paper_100us),
    ] {
        let mut t = Table::new(&[
            "partitions",
            "ops/s (ours)",
            "speedup",
            "ops/s (paper)",
            "paper speedup",
        ]);
        let conn = SleepConnector::new(sleep);
        let mut base = 0.0;
        for (i, &p) in partition_counts.iter().enumerate() {
            // Subsample the stream so the 1ms runs stay short.
            let take = (2_000 * p).min(items.len());
            let slice = &items[..take];
            let config = DriverConfig { partitions: p, ..DriverConfig::default() };
            let report = run(slice, &conn, &config).expect("run");
            if i == 0 {
                base = report.ops_per_second;
            }
            t.row(&[
                p.to_string(),
                format!("{:.0}", report.ops_per_second),
                format!("{:.2}x", report.ops_per_second / base),
                format!("{:.0}", paper[i]),
                format!("{:.2}x", paper[i] / paper[0]),
            ]);
        }
        println!("sleep = {label}:");
        t.print();
        println!();
    }
    println!("paper shape: near-linear scaling while maintaining inter-partition dependencies");
}
