//! Extension — before/after benchmark of the pinned zero-allocation read
//! path. The `baseline` module replicates the pre-change read path in-bin
//! (a per-call-latch `Snapshot` taken per operation, owned `Vec` accessors,
//! `HashSet` friend circles); the "pinned" side runs the shipped query code
//! on a `PinnedSnapshot`. Both sides are asserted to return identical rows
//! before anything is timed, then each is measured for ops/s and — via a
//! counting global allocator — heap allocations per operation.
//!
//! Note on the ratio: since the latch-free store rewrite, the baseline's
//! owned-`Vec` accessors run on the same lazily-merged index tails as the
//! pinned side, so the ablation now isolates the per-call latch, the
//! owned-copy allocations, and the `HashSet` circles — not the lazy read
//! path itself. Expect the ops/s ratio to compress toward 1x on
//! tail-light data while the allocations-per-op gap stays wide.
//!
//! Writes `BENCH_read_path.json` to the working directory (consumed by the
//! CI perf-smoke step and EXPERIMENTS.md).
//!
//! Usage: `cargo run -p snb-bench --release --bin ext_read_path [persons]`

use snb_core::time::SimTime;
use snb_core::{MessageId, PersonId};
use snb_obs::Json;
use snb_queries::params::{Q2Params, Q6Params, Q9Params};
use snb_queries::{complex, Engine};
use snb_store::Store;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counting allocator: every heap allocation on any thread bumps the
/// counters. `Relaxed` is fine — readers only look between single-threaded
/// measurement phases.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The pre-change read path, replicated verbatim from the repository
/// history so the two implementations stay independently comparable: every
/// operation latches a fresh `Snapshot`, circles are `HashSet`s, and all
/// index accessors return owned `Vec`s.
mod baseline {
    use snb_core::time::SimTime;
    use snb_core::{MessageId, PersonId};
    use snb_queries::complex::{q2::Q2Row, q6::Q6Row, q9::Q9Row};
    use snb_queries::helpers::TopK;
    use snb_queries::params::{Q2Params, Q6Params, Q9Params};
    use snb_store::Snapshot;
    use std::cmp::Reverse;
    use std::collections::{HashMap, HashSet};

    const LIMIT: usize = 20;
    type Key = (Reverse<SimTime>, u64);

    fn friend_set(snap: &Snapshot<'_>, p: PersonId) -> HashSet<u64> {
        snap.friends(p).into_iter().map(|(f, _)| f).collect()
    }

    fn two_hop(snap: &Snapshot<'_>, p: PersonId) -> (HashSet<u64>, HashSet<u64>) {
        let one = friend_set(snap, p);
        let mut two = HashSet::new();
        for &f in &one {
            for (ff, _) in snap.friends(PersonId(f)) {
                if ff != p.raw() && !one.contains(&ff) {
                    two.insert(ff);
                }
            }
        }
        (one, two)
    }

    pub fn q2(snap: &Snapshot<'_>, p: &Q2Params) -> Vec<Q2Row> {
        let mut top: TopK<Key, ()> = TopK::new(LIMIT);
        for (friend, _) in snap.friends(p.person) {
            for (msg, date) in snap.recent_messages_of(PersonId(friend), p.max_date, LIMIT) {
                let key = (Reverse(date), msg);
                if !top.would_accept(&key) {
                    break;
                }
                top.push(key, ());
            }
        }
        materialize_q2(snap, top.into_sorted())
    }

    fn materialize_q2(snap: &Snapshot<'_>, top: Vec<(Key, ())>) -> Vec<Q2Row> {
        top.into_iter()
            .filter_map(|((Reverse(date), msg), ())| {
                let row = snap.message(MessageId(msg))?;
                let author = snap.person(row.author)?;
                let content = row
                    .image_file
                    .as_deref()
                    .filter(|_| row.content.is_empty())
                    .unwrap_or(&row.content)
                    .to_string();
                Some(Q2Row {
                    author: row.author,
                    first_name: author.first_name,
                    last_name: author.last_name,
                    message: MessageId(msg),
                    content,
                    creation_date: date,
                })
            })
            .collect()
    }

    pub fn q6(snap: &Snapshot<'_>, p: &Q6Params) -> Vec<Q6Row> {
        let (one, two) = two_hop(snap, p.person);
        let mut counts: HashMap<u64, u32> = HashMap::new();
        for c in one.into_iter().chain(two) {
            for (msg, _) in snap.messages_of(PersonId(c)) {
                let id = MessageId(msg);
                if snap.message_meta(id).is_some_and(|m| m.reply_info.is_none()) {
                    let tags = snap.message_tags(id);
                    if tags.iter().any(|t| t.raw() == p.tag as u64) {
                        for t in tags {
                            if t.raw() != p.tag as u64 {
                                *counts.entry(t.raw()).or_default() += 1;
                            }
                        }
                    }
                }
            }
        }
        let dicts = snb_core::dict::Dictionaries::global();
        let mut rows: Vec<Q6Row> = counts
            .into_iter()
            .map(|(tag, count)| Q6Row { tag: dicts.tags.tag(tag as usize).name.clone(), count })
            .collect();
        rows.sort_by(|a, b| {
            (std::cmp::Reverse(a.count), &a.tag).cmp(&(std::cmp::Reverse(b.count), &b.tag))
        });
        rows.truncate(10); // Q6 returns the top-10 co-occurring tags
        rows
    }

    pub fn q9(snap: &Snapshot<'_>, p: &Q9Params) -> Vec<Q9Row> {
        let (one, two) = two_hop(snap, p.person);
        let mut top: TopK<Key, ()> = TopK::new(LIMIT);
        for c in one.into_iter().chain(two) {
            for (msg, date) in snap.recent_messages_of(PersonId(c), p.max_date, LIMIT) {
                let key = (Reverse(date), msg);
                if !top.would_accept(&key) {
                    break;
                }
                top.push(key, ());
            }
        }
        top.into_sorted()
            .into_iter()
            .filter_map(|((Reverse(date), msg), ())| {
                let row = snap.message(MessageId(msg))?;
                let author = snap.person(row.author)?;
                let content = row
                    .image_file
                    .as_deref()
                    .filter(|_| row.content.is_empty())
                    .unwrap_or(&row.content)
                    .to_string();
                Some(Q9Row {
                    author: row.author,
                    first_name: author.first_name,
                    last_name: author.last_name,
                    message: MessageId(msg),
                    content,
                    creation_date: date,
                })
            })
            .collect()
    }

    /// Pre-change S2: owned top-10 Vec, then row materialization.
    pub fn s2_rows(snap: &Snapshot<'_>, person: PersonId) -> usize {
        snap.recent_messages_of(person, SimTime(i64::MAX), 10)
            .into_iter()
            .filter(|&(msg, _)| snap.message_meta(MessageId(msg)).is_some())
            .count()
    }
}

/// One measured side of one workload.
struct Measure {
    ops_per_s: f64,
    micros_per_op: f64,
    allocs_per_op: f64,
    kib_per_op: f64,
}

/// Time `f` for `iters` iterations (after one warm-up call) and read the
/// allocation counters across the timed region.
fn measure(iters: u32, mut f: impl FnMut() -> usize) -> (Measure, usize) {
    let rows = f(); // warm-up: faults pages, sizes the thread-local scratch
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let b0 = ALLOC_BYTES.load(Ordering::Relaxed);
    let t0 = Instant::now();
    let mut sink = 0usize;
    for _ in 0..iters {
        sink = sink.wrapping_add(f());
    }
    let dt = t0.elapsed().as_secs_f64();
    let allocs = (ALLOCS.load(Ordering::Relaxed) - a0) as f64;
    let bytes = (ALLOC_BYTES.load(Ordering::Relaxed) - b0) as f64;
    std::hint::black_box(sink);
    let n = iters as f64;
    (
        Measure {
            ops_per_s: n / dt,
            micros_per_op: dt * 1e6 / n,
            allocs_per_op: allocs / n,
            kib_per_op: bytes / n / 1024.0,
        },
        rows,
    )
}

fn json_pair(name: &str, old: &Measure, new: &Measure) -> Json {
    Json::obj([
        ("name", Json::from(name)),
        (
            "baseline",
            Json::obj([
                ("ops_per_s", Json::from(old.ops_per_s)),
                ("micros_per_op", Json::from(old.micros_per_op)),
                ("allocs_per_op", Json::from(old.allocs_per_op)),
                ("kib_per_op", Json::from(old.kib_per_op)),
            ]),
        ),
        (
            "pinned",
            Json::obj([
                ("ops_per_s", Json::from(new.ops_per_s)),
                ("micros_per_op", Json::from(new.micros_per_op)),
                ("allocs_per_op", Json::from(new.allocs_per_op)),
                ("kib_per_op", Json::from(new.kib_per_op)),
            ]),
        ),
        ("speedup", Json::from(new.ops_per_s / old.ops_per_s)),
    ])
}

fn main() {
    let persons: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("persons must be a number"))
        .unwrap_or(1_000);
    let iters: u32 =
        std::env::args().nth(2).map(|a| a.parse().expect("iters must be a number")).unwrap_or(100);
    println!("== ext_read_path: pinned read path vs per-call-latch baseline ==");
    println!("   persons={persons} iters={iters}");

    let ds = snb_bench::dataset(persons);
    // Mixed store: immutable bulk prefix + the full update stream replayed
    // as versioned commits, so the fast lane runs next to the checked tail.
    let store = Store::new();
    store.bulk_load(&ds);
    for u in ds.update_stream() {
        store.apply(&u.op).unwrap();
    }

    let bindings = snb_params::curated_bindings(&ds, 8);
    let q2s: Vec<Q2Params> = bindings
        .all(2)
        .iter()
        .filter_map(|q| match q {
            snb_queries::ComplexQuery::Q2(p) => Some(*p),
            _ => None,
        })
        .collect();
    let q6s: Vec<Q6Params> = bindings
        .all(6)
        .iter()
        .filter_map(|q| match q {
            snb_queries::ComplexQuery::Q6(p) => Some(p.clone()),
            _ => None,
        })
        .collect();
    let q9s: Vec<Q9Params> = bindings
        .all(9)
        .iter()
        .filter_map(|q| match q {
            snb_queries::ComplexQuery::Q9(p) => Some(*p),
            _ => None,
        })
        .collect();
    assert!(!q2s.is_empty() && !q6s.is_empty() && !q9s.is_empty(), "curation produced bindings");

    // Differential check before timing anything: the two paths must return
    // byte-identical rows for every binding.
    {
        let old = store.snapshot();
        let new = store.pinned();
        for p in &q2s {
            assert_eq!(baseline::q2(&old, p), complex::q2::run(&new, Engine::Intended, p));
        }
        for p in &q6s {
            assert_eq!(baseline::q6(&old, p), complex::q6::run(&new, Engine::Intended, p));
        }
        for p in &q9s {
            assert_eq!(baseline::q9(&old, p), complex::q9::run(&new, Engine::Intended, p));
        }
        println!("   differential check: baseline == pinned on all bindings");
    }

    let mut table = snb_bench::Table::new(&[
        "workload",
        "base ops/s",
        "pinned ops/s",
        "speedup",
        "base allocs/op",
        "pinned allocs/op",
    ]);
    let mut sections: Vec<Json> = Vec::new();
    let mut push = |name: &str, old: Measure, new: Measure, table: &mut snb_bench::Table| {
        table.row(&[
            name.to_string(),
            format!("{:.0}", old.ops_per_s),
            format!("{:.0}", new.ops_per_s),
            format!("{:.2}x", new.ops_per_s / old.ops_per_s),
            format!("{:.1}", old.allocs_per_op),
            format!("{:.1}", new.allocs_per_op),
        ]);
        sections.push(json_pair(name, &old, &new));
    };

    // Per-query pairs. Each op latches its own snapshot, matching how the
    // driver connector issues reads on both sides of the change.
    let (old_q2, _) = measure(iters, || {
        let snap = store.snapshot();
        q2s.iter().map(|p| baseline::q2(&snap, p).len()).sum()
    });
    let (new_q2, _) = measure(iters, || {
        let snap = store.pinned();
        q2s.iter().map(|p| complex::q2::run(&snap, Engine::Intended, p).len()).sum()
    });
    push("Q2", old_q2, new_q2, &mut table);

    let (old_q6, _) = measure(iters, || {
        let snap = store.snapshot();
        q6s.iter().map(|p| baseline::q6(&snap, p).len()).sum()
    });
    let (new_q6, _) = measure(iters, || {
        let snap = store.pinned();
        q6s.iter().map(|p| complex::q6::run(&snap, Engine::Intended, p).len()).sum()
    });
    push("Q6", old_q6, new_q6, &mut table);

    let (old_q9, _) = measure(iters, || {
        let snap = store.snapshot();
        q9s.iter().map(|p| baseline::q9(&snap, p).len()).sum()
    });
    let (new_q9, _) = measure(iters, || {
        let snap = store.pinned();
        q9s.iter().map(|p| complex::q9::run(&snap, Engine::Intended, p).len()).sum()
    });
    push("Q9", old_q9, new_q9, &mut table);

    // The acceptance metric: the read-only complex mix, one snapshot per
    // operation on both sides.
    let (old_mix, _) = measure(iters, || {
        let mut rows = 0;
        for p in &q2s {
            rows += baseline::q2(&store.snapshot(), p).len();
        }
        for p in &q6s {
            rows += baseline::q6(&store.snapshot(), p).len();
        }
        for p in &q9s {
            rows += baseline::q9(&store.snapshot(), p).len();
        }
        rows
    });
    let (new_mix, _) = measure(iters, || {
        let mut rows = 0;
        for p in &q2s {
            rows += complex::q2::run(&store.pinned(), Engine::Intended, p).len();
        }
        for p in &q6s {
            rows += complex::q6::run(&store.pinned(), Engine::Intended, p).len();
        }
        for p in &q9s {
            rows += complex::q9::run(&store.pinned(), Engine::Intended, p).len();
        }
        rows
    });
    let mix_speedup = new_mix.ops_per_s / old_mix.ops_per_s;
    push("complex mix", old_mix, new_mix, &mut table);

    // Short-read pair: S2 anchored on the curated Q2 persons; the pinned
    // side walks the date index borrowing, the baseline copies a Vec.
    let s2_people: Vec<PersonId> = q2s.iter().map(|p| p.person).collect();
    let (old_s2, _) = measure(iters * 10, || {
        let snap = store.snapshot();
        s2_people.iter().map(|&p| baseline::s2_rows(&snap, p)).sum()
    });
    let (new_s2, _) = measure(iters * 10, || {
        let snap = store.pinned();
        s2_people
            .iter()
            .map(|&p| {
                snap.recent_messages_walk(p, SimTime(i64::MAX))
                    .take(10)
                    .filter(|&(msg, _)| snap.message_meta(MessageId(msg)).is_some())
                    .count()
            })
            .sum()
    });
    push("S2 walk", old_s2, new_s2, &mut table);

    table.print();
    println!(
        "\n   complex-mix speedup: {mix_speedup:.2}x \
         (both sides share the lazy ladder store; watch allocs/op for the gap)"
    );

    let counters = store.counters().snapshot();
    let fastlane =
        counters.iter().find(|(n, _)| *n == "store.read.fastlane_entries").map_or(0, |&(_, v)| v);
    let pins =
        counters.iter().find(|(n, _)| *n == "store.read.latchfree_reads").map_or(0, |&(_, v)| v);
    println!("   store.read.fastlane_entries={fastlane} store.read.latchfree_reads={pins}");

    let doc = Json::obj([
        ("bench", Json::from("ext_read_path")),
        ("persons", Json::from(persons)),
        ("iters", Json::from(iters)),
        ("workloads", Json::Arr(sections)),
        ("complex_mix_speedup", Json::from(mix_speedup)),
        (
            "counters",
            Json::obj([
                ("store.read.fastlane_entries", Json::from(fastlane)),
                ("store.read.latchfree_reads", Json::from(pins)),
            ]),
        ),
    ]);
    std::fs::write("BENCH_read_path.json", doc.render_pretty(2)).expect("write json");
    println!("   wrote BENCH_read_path.json");
}
