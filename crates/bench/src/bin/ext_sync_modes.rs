//! Extension ablation — Parallel vs Windowed execution (§4.2): the paper
//! argues Windowed Execution reduces GCT synchronization ("TGC between the
//! parallel threads needs to be synchronized much less often, once every
//! T_SAFE of simulated time"). We measure the throughput of both modes on
//! the same stream with a fast dummy connector, where synchronization
//! overhead dominates.

use snb_bench::{dataset, Table};
use snb_driver::{mix, run, DriverConfig, ExecutionMode, SleepConnector};
use std::time::Duration;

fn main() {
    let ds = dataset(3_000);
    let items = mix::updates_only(&ds);
    let take = items.len().min(30_000);
    let slice = &items[..take];
    println!("sync-mode ablation: {} update ops, 10us dummy connector\n", slice.len());

    let conn = SleepConnector::new(Duration::from_micros(10));
    let mut t =
        Table::new(&["partitions", "parallel ops/s", "windowed ops/s", "windowed/parallel"]);
    for partitions in [2usize, 4, 8] {
        let par = run(
            slice,
            &conn,
            &DriverConfig { partitions, mode: ExecutionMode::Parallel, ..DriverConfig::default() },
        )
        .unwrap()
        .ops_per_second;
        let win = run(
            slice,
            &conn,
            &DriverConfig {
                partitions,
                mode: ExecutionMode::Windowed { window_millis: ds.config.t_safe_millis },
                ..DriverConfig::default()
            },
        )
        .unwrap()
        .ops_per_second;
        t.row(&[
            partitions.to_string(),
            format!("{par:.0}"),
            format!("{win:.0}"),
            format!("{:.2}x", win / par),
        ]);
    }
    t.print();
    println!("\npaper shape: windowed execution is at least as fast; the gap grows with");
    println!("partition count as GCT synchronization becomes the bottleneck.");
}
