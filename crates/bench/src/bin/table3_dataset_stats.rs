//! Table 3 — SNB dataset statistics at different scale factors.
//!
//! The paper reports entity counts at SF 30..1000 (millions of entities);
//! we run the same generator at laptop scale factors and check that the
//! *composition* matches: messages dominate nodes, friendships dominate
//! person-edges, and the messages-per-person ratio tracks the degree law.

use snb_bench::{dataset_with, Table};
use snb_datagen::GeneratorConfig;

fn main() {
    println!("Table 3: dataset statistics (paper rows at SF30-SF1000 for shape reference)\n");
    println!("  paper: SF30  -> nodes 99.4M  edges 655.4M  persons 0.18M  friends 14.2M  messages 97.4M  forums 1.8M");
    println!("  paper: SF100 -> nodes 317.7M edges 2154.9M persons 0.50M  friends 46.6M  messages 312.1M forums 5.0M");
    println!();
    let mut t = Table::new(&[
        "SF",
        "persons",
        "friends",
        "messages",
        "forums",
        "nodes",
        "edges",
        "msg/person",
        "msg/friend",
    ]);
    for sf in [0.01, 0.03, 0.1, 0.3] {
        let ds = dataset_with(GeneratorConfig::scale_factor(sf).threads(snb_bench::num_threads()));
        let s = ds.stats();
        t.row(&[
            format!("{sf}"),
            s.persons.to_string(),
            s.friends.to_string(),
            s.messages.to_string(),
            s.forums.to_string(),
            s.nodes.to_string(),
            s.edges.to_string(),
            format!("{:.1}", s.messages as f64 / s.persons as f64),
            format!("{:.2}", s.messages as f64 / s.friends as f64),
        ]);
    }
    t.print();
    println!(
        "\npaper shape anchors: msg/friend ~6.9 (SF30), messages >> persons, edges > 6x nodes"
    );
}
