//! Fig. 3a — friendship degree distribution (log-log histogram).

use snb_bench::{dataset, Table};

fn main() {
    let ds = dataset(10_000);
    let mut deg = vec![0u32; ds.persons.len()];
    for k in &ds.knows {
        deg[k.a.index()] += 1;
        deg[k.b.index()] += 1;
    }
    // Log-spaced buckets like the paper's axes.
    let max = *deg.iter().max().unwrap() as f64;
    let buckets = 14usize;
    let mut counts = vec![0usize; buckets];
    for &d in &deg {
        let b = if d == 0 {
            0
        } else {
            ((d as f64).ln() / max.ln() * (buckets - 1) as f64).round() as usize
        };
        counts[b.min(buckets - 1)] += 1;
    }
    println!(
        "Fig 3a: friendship degree distribution ({} persons, {} edges)\n",
        ds.persons.len(),
        ds.knows.len()
    );
    let mut t = Table::new(&["degree <=", "persons", "bar (log)"]);
    for (b, &c) in counts.iter().enumerate() {
        let upper = (max.ln() * b as f64 / (buckets - 1) as f64).exp();
        let bar = if c > 0 {
            "#".repeat(((c as f64).ln() * 5.0).max(1.0) as usize)
        } else {
            String::new()
        };
        t.row(&[format!("{upper:.0}"), c.to_string(), bar]);
    }
    t.print();
    let mean = deg.iter().map(|&d| d as f64).sum::<f64>() / deg.len() as f64;
    println!(
        "\nmean degree {:.1} (law predicts {:.1}); max degree {}",
        mean,
        snb_core::degree::DegreeModel::avg_degree_for(ds.persons.len() as u64),
        max as u32
    );
    println!("paper shape: heavy right tail, max >> mean");
}
