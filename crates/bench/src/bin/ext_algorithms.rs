//! Extension — the SNB-Algorithms workload (§1's third workload) on the
//! shared dataset: PageRank, BFS, community detection, clustering, with
//! the structural-realism checks of the GRADES companion paper (ref \[13\]).

use snb_algorithms::{
    average_clustering, bfs_stats, connected_components, label_propagation, louvain_communities,
    modularity, pagerank, top_k, triangle_count, CsrGraph, PageRankConfig,
};
use snb_bench::{dataset, time, Table};

fn main() {
    let ds = dataset(5_000);
    let (g, t_build) = time(|| CsrGraph::from_dataset(&ds));
    println!(
        "SNB-Algorithms on {} persons / {} friendships (CSR build {})\n",
        g.vertex_count(),
        g.edge_count(),
        snb_bench::fmt_duration(t_build)
    );

    let mut t = Table::new(&["algorithm", "time", "result"]);
    let (comp, d) = time(|| connected_components(&g));
    let mut sizes = vec![0usize; comp.1];
    for &l in &comp.0 {
        sizes[l as usize] += 1;
    }
    let largest = *sizes.iter().max().unwrap();
    t.row(&[
        "connected components".into(),
        snb_bench::fmt_duration(d),
        format!(
            "{} components, largest {:.1}%",
            comp.1,
            100.0 * largest as f64 / g.vertex_count() as f64
        ),
    ]);

    let (pr, d) = time(|| pagerank(&g, &PageRankConfig::default()));
    t.row(&[
        "pagerank".into(),
        snb_bench::fmt_duration(d),
        format!("{} iterations, top score {:.5}", pr.iterations, top_k(&pr, 1)[0].1),
    ]);

    let hub = top_k(&pr, 1)[0].0;
    let (stats, d) = time(|| bfs_stats(&g, hub));
    t.row(&[
        "bfs from hub".into(),
        snb_bench::fmt_duration(d),
        format!(
            "reached {}, depth {}, mean dist {:.2}",
            stats.reached, stats.max_depth, stats.mean_depth
        ),
    ]);

    let (lpa, d) = time(|| label_propagation(&g, 30));
    t.row(&[
        "label propagation".into(),
        snb_bench::fmt_duration(d),
        format!("{} communities, Q={:.3}", lpa.count, modularity(&g, &lpa.labels)),
    ]);

    let (louvain, d) = time(|| louvain_communities(&g, 30));
    t.row(&[
        "louvain (1 level)".into(),
        snb_bench::fmt_duration(d),
        format!("{} communities, Q={:.3}", louvain.count, modularity(&g, &louvain.labels)),
    ]);

    let (cc, d) = time(|| average_clustering(&g));
    let random_cc = 2.0 * g.edge_count() as f64 / (g.vertex_count() as f64).powi(2);
    t.row(&[
        "avg clustering".into(),
        snb_bench::fmt_duration(d),
        format!("{cc:.3} (random graph: {random_cc:.4})"),
    ]);

    let (tri, d) = time(|| triangle_count(&g));
    t.row(&["triangle count".into(), snb_bench::fmt_duration(d), tri.to_string()]);
    t.print();

    println!("\npaper anchors (§1/§2, ref [13]): one giant component, strong communities,");
    println!("clustering far above random — the realism DATAGEN is tuned for.");
}
