//! Table 8 — sizes of the three largest tables and their largest indices.
//!
//! Paper (Virtuoso, SF300): post 76.8GB (index ps_content 41.7GB),
//! likes 23.6GB (l_creationdate 11.3GB), forum_person 9.3GB
//! (fp_creationdate 6.0GB).

use snb_bench::{dataset, full_store, Table};

fn main() {
    let ds = dataset(5_000);
    let store = full_store(&ds);
    let stats = store.pinned().storage_stats();

    println!(
        "Table 8: three largest tables ({} persons, {} messages)\n",
        ds.persons.len(),
        ds.message_count()
    );
    let mut t = Table::new(&["table", "rows", "MB", "largest index", "index MB"]);
    for ts in stats.largest(3) {
        t.row(&[
            ts.name.to_string(),
            ts.rows.to_string(),
            format!("{:.2}", ts.bytes as f64 / 1e6),
            ts.largest_index.0.to_string(),
            format!("{:.2}", ts.largest_index.1 as f64 / 1e6),
        ]);
    }
    t.print();
    println!("\ntotal allocated: {:.2} MB", stats.total_bytes as f64 / 1e6);
    println!("paper shape: message/post table dominates, then likes, then forum_person");
}
