//! Table 1 — attribute value correlations ("left determines right").
//!
//! The paper's Table 1 is a specification, not a measurement; this binary
//! verifies each rule empirically on a generated dataset and prints the
//! strength of the correlation.

use snb_bench::{dataset, Table};
use snb_core::dict::Dictionaries;
use std::collections::HashMap;

fn main() {
    let ds = dataset(4_000);
    let dicts = Dictionaries::global();
    let mut t = Table::new(&["rule (left determines right)", "measured", "verdict"]);
    let mut check = |rule: &str, measured: String, ok: bool| {
        t.row(&[rule.into(), measured, if ok { "PASS" } else { "FAIL" }.into()]);
    };

    // person.location -> person.firstName: top names differ across countries.
    let top_name = |country: &str| -> &'static str {
        let c = dicts.places.country_by_name(country).unwrap();
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for p in ds.persons.iter().filter(|p| p.country == c) {
            *counts.entry(p.first_name).or_default() += 1;
        }
        counts.into_iter().max_by_key(|&(_, n)| n).map(|(name, _)| name).unwrap_or("")
    };
    let (de, cn) = (top_name("Germany"), top_name("China"));
    check("location -> firstName", format!("top DE name {de:?} vs top CN name {cn:?}"), de != cn);

    // person.location -> person.university (nearby universities).
    let with_uni: Vec<_> = ds.persons.iter().filter(|p| p.study_at.is_some()).collect();
    let local_uni = with_uni
        .iter()
        .filter(|p| {
            dicts.orgs.university(p.study_at.unwrap().university.index()).country == p.country
        })
        .count();
    let uni_rate = local_uni as f64 / with_uni.len() as f64;
    check(
        "location -> university",
        format!("{:.0}% study in home country", 100.0 * uni_rate),
        uni_rate > 0.8,
    );

    // person.location -> person.company (in country).
    let jobs: Vec<(usize, usize)> = ds
        .persons
        .iter()
        .flat_map(|p| {
            p.work_at
                .iter()
                .map(move |w| (p.country, dicts.orgs.company(w.company.index()).country))
        })
        .collect();
    let local_jobs = jobs.iter().filter(|(home, at)| home == at).count();
    let job_rate = local_jobs as f64 / jobs.len() as f64;
    check(
        "location -> company",
        format!("{:.0}% work in home country", 100.0 * job_rate),
        job_rate > 0.85,
    );

    // person.location -> person.languages (spoken in country).
    let lang_ok = ds.persons.iter().all(|p| {
        let native = dicts.places.country(p.country).languages;
        native.iter().all(|l| p.languages.contains(l))
    });
    check("location -> languages", "every person speaks all home languages".into(), lang_ok);

    // person.language -> post.language (speaks).
    let speaks =
        ds.posts.iter().all(|p| ds.persons[p.author.index()].languages.contains(&p.language));
    check("language -> post.language", "every post in a language its author speaks".into(), speaks);

    // person.interests -> forum/post topic: wall tags drawn from interests.
    let wall_topic =
        ds.forums.iter().filter(|f| f.kind == snb_core::schema::ForumKind::Wall).all(|f| {
            let owner = &ds.persons[f.moderator.index()];
            f.tags.iter().all(|t| owner.interests.contains(t))
        });
    check(
        "interests -> forum topic",
        "wall tags are subsets of owner interests".into(),
        wall_topic,
    );

    // post.topic -> post.text (DBpedia article lines -> topic words in text).
    let sampled: Vec<_> = ds.posts.iter().filter(|p| p.image_file.is_none()).take(2_000).collect();
    let on_topic = sampled
        .iter()
        .filter(|p| {
            p.tags
                .first()
                .is_some_and(|t| p.content.contains(dicts.tags.tag(t.index()).name.as_str()))
        })
        .count();
    let topic_rate = on_topic as f64 / sampled.len() as f64;
    check(
        "post.topic -> post.text",
        format!("{:.0}% of posts mention their topic", 100.0 * topic_rate),
        topic_rate > 0.9,
    );

    // person.employer -> person.email (@company / @university).
    let employed: Vec<_> =
        ds.persons.iter().filter(|p| !p.work_at.is_empty()).take(2_000).collect();
    let branded = employed
        .iter()
        .filter(|p| {
            let company = dicts.orgs.company(p.work_at[0].company.index());
            let slug: String = company
                .name
                .chars()
                .filter(|c| c.is_ascii_alphanumeric() || *c == ' ')
                .collect::<String>()
                .to_lowercase()
                .replace(' ', "-");
            p.emails.iter().any(|e| e.contains(&slug))
        })
        .count();
    check(
        "employer -> email",
        format!("{}/{} employed persons use a company domain", branded, employed.len()),
        branded == employed.len(),
    );

    // Time-ordering rules.
    let birth_ok = ds.persons.iter().all(|p| p.birthday < p.creation_date);
    check("birthDate < createdDate", "all persons".into(), birth_ok);
    let forum_ok =
        ds.forums.iter().all(|f| f.creation_date > ds.persons[f.moderator.index()].creation_date);
    check("person.createdDate < forum.createdDate", "all forums".into(), forum_ok);
    let mut msg_time: HashMap<u64, snb_core::SimTime> =
        ds.posts.iter().map(|p| (p.id.raw(), p.creation_date)).collect();
    msg_time.extend(ds.comments.iter().map(|c| (c.id.raw(), c.creation_date)));
    let post_ok = {
        let forum_created: Vec<_> = ds.forums.iter().map(|f| f.creation_date).collect();
        ds.posts.iter().all(|p| p.creation_date > forum_created[p.forum.index()])
    };
    check("forum.createdDate < post.createdDate", "all posts".into(), post_ok);
    let comment_ok = ds.comments.iter().all(|c| c.creation_date > msg_time[&c.reply_to.raw()]);
    check("post.createdDate < comment.createdDate", "all comments".into(), comment_ok);
    let join_ok = {
        let forum_created: Vec<_> = ds.forums.iter().map(|f| f.creation_date).collect();
        ds.memberships.iter().all(|m| m.join_date >= forum_created[m.forum.index()])
    };
    check("forum.createdDate <= joinedDate", "all memberships".into(), join_ok);

    println!("Table 1: attribute value correlations, verified on {} persons\n", ds.persons.len());
    t.print();
}
