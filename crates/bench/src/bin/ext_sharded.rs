//! Extension — sharded scatter-gather scaling sweep (PR 10): run the same
//! read-dominated interactive slice against 1, 2, and 4 in-process shard
//! servers behind a [`ShardedConnector`], and report per-shard *and*
//! aggregate throughput/latency for the full-disclosure table.
//!
//! Each shard server bulk-loads only its forum slice plus the replicated
//! person/knows graph (`Store::bulk_load_sharded`); the router fans
//! scatterable reads (Q2/Q9/S2) to every shard concurrently and merges
//! exactly, while point reads route to one shard by id range. On a box
//! with enough hardware threads, N shards put N event loops and worker
//! pools behind the same workload — read throughput should scale; on a
//! starved host the sweep still verifies zero errors and no connection
//! leaks, and marks `scaling_valid: false` so CI does not enforce a
//! scaling floor it cannot observe.
//!
//! Writes `BENCH_sharded.json` (consumed by `ci/check_sharded.py` and
//! EXPERIMENTS.md).
//!
//! Usage: `cargo run -p snb-bench --release --bin ext_sharded
//! [persons] [ops_per_thread] [threads]`

use snb_core::shard::ShardMap;
use snb_core::time::SimTime;
use snb_core::{MessageId, PersonId};
use snb_driver::connector::{Connector, Operation, StoreConnector};
use snb_net::{Server, ServerConfig, ShardedConnector};
use snb_obs::{Json, LatencyHistogram};
use snb_queries::params::{ComplexQuery, Q2Params, Q9Params, ShortQuery};
use snb_queries::Engine;
use snb_store::Store;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The `i`-th operation of a driver thread's read stream.
///
/// * `scatter_every == 0` — **routed_reads**: the six point-routed short
///   reads only. Every op crosses the wire exactly once regardless of
///   shard count, so this mix isolates the *router's* overhead (routing
///   decision, directory lookup, pool traffic) — it must stay near-free
///   even on a one-core host.
/// * `scatter_every == k` — every `k`-th op (by CPU-weighted groups of 3)
///   is a scatterable read (Q2, Q9, or S2), which fans out to every shard
///   and merges client-side. A scatter costs ~N executions of the
///   replicated traversal plus N round trips, so this mix gains only when
///   hardware threads exist for the shards to run on.
fn nth_op(
    i: u64,
    thread: u64,
    scatter_every: u64,
    persons: &[PersonId],
    messages: &[MessageId],
) -> Operation {
    let mix = i.wrapping_mul(11).wrapping_add(thread.wrapping_mul(17));
    let p = persons[(mix % persons.len() as u64) as usize];
    let m = messages[(mix % messages.len() as u64) as usize];
    if scatter_every > 0 && mix % (3 * scatter_every) < 3 {
        let max_date = SimTime(i64::MAX);
        return match mix % 3 {
            0 => Operation::Complex(ComplexQuery::Q2(Q2Params { person: p, max_date })),
            1 => Operation::Complex(ComplexQuery::Q9(Q9Params { person: p, max_date })),
            _ => Operation::Short(ShortQuery::S2(p)),
        };
    }
    match mix % 6 {
        0 => Operation::Short(ShortQuery::S1(p)),
        1 => Operation::Short(ShortQuery::S3(p)),
        2 => Operation::Short(ShortQuery::S4(m)),
        3 => Operation::Short(ShortQuery::S5(m)),
        4 => Operation::Short(ShortQuery::S6(m)),
        _ => Operation::Short(ShortQuery::S7(m)),
    }
}

struct ShardStats {
    requests: u64,
    p50: u64,
    p90: u64,
    p99: u64,
    accepted: u64,
    closed: u64,
    open_conns: u64,
}

struct LevelResult {
    shards: u32,
    total_ops: u64,
    errors: u64,
    wall: Duration,
    latency: LatencyHistogram,
    /// Aggregate qps of every interleaved round, in round order. Rounds
    /// line up across the levels of a mix, so `round_qps[r]` of the
    /// 2-shard level and of the 1-shard level ran back to back —
    /// `ci/check_sharded.py` takes the best *matched-round* ratio, which
    /// cancels background-load drift a cross-time ratio would absorb.
    round_qps: Vec<f64>,
    per_shard: Vec<ShardStats>,
}

/// One shard-count level under measurement: its live servers and router,
/// plus the best timed window seen so far.
struct LevelCtx {
    shards: u32,
    servers: Vec<Server>,
    router: ShardedConnector,
    best: Option<(Duration, LatencyHistogram, Vec<u64>)>,
    round_qps: Vec<f64>,
    errors: u64,
}

/// Bind `shards` servers (each bulk-loading only its slice), connect the
/// router, and warm every code path outside the timed windows.
fn setup_level(
    ds: &snb_datagen::Dataset,
    shards: u32,
    threads: usize,
    scatter_every: u64,
    persons: &[PersonId],
    messages: &[MessageId],
) -> LevelCtx {
    let map = ShardMap::new(shards);
    let servers: Vec<Server> = (0..shards)
        .map(|shard| {
            let store = Arc::new(Store::new());
            store.bulk_load_sharded(ds, ds.config.update_split, threads, map, shard);
            let connector = Arc::new(StoreConnector::new(store, Engine::Intended));
            let config = ServerConfig { shard, shards, ..ServerConfig::default() };
            Server::bind_with_config("127.0.0.1:0", connector, config).expect("bind shard")
        })
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();

    let router = ShardedConnector::connect(&addrs).expect("sharded connect");
    router.seed_routes(ds.message_routes());
    for i in 0..32 {
        router.execute(&nth_op(i, 0, scatter_every, persons, messages)).expect("warmup op");
    }
    LevelCtx { shards, servers, router, best: None, round_qps: Vec::new(), errors: 0 }
}

/// One timed window over a level's router. Windows for *all* levels of a
/// mix are interleaved round-robin by the caller and each level keeps its
/// fastest window: on a shared host, background load varies on a seconds
/// timescale, and measuring 1-shard and N-shard at distant times would
/// fold that drift into the scaling ratio CI enforces. Errors accumulate
/// across every window — a failure anywhere fails CI.
fn run_window(
    ctx: &mut LevelCtx,
    threads: usize,
    ops_per_thread: u64,
    scatter_every: u64,
    persons: &[PersonId],
    messages: &[MessageId],
) {
    let requests_before = shard_requests(&ctx.router, ctx.shards);
    let latency = LatencyHistogram::new();
    let errors = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for thread in 0..threads {
            let (router, latency, errors) = (&ctx.router, &latency, &errors);
            scope.spawn(move || {
                for i in 0..ops_per_thread {
                    let op = nth_op(i, thread as u64, scatter_every, persons, messages);
                    let at = Instant::now();
                    match router.execute(&op) {
                        Ok(_) => latency.record(at.elapsed().as_micros() as u64),
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let wall = t0.elapsed();
    ctx.errors += errors.load(Ordering::Relaxed);
    let ops = threads as u64 * ops_per_thread;
    ctx.round_qps.push(ops as f64 / wall.as_secs_f64().max(1e-9));
    let requests: Vec<u64> = shard_requests(&ctx.router, ctx.shards)
        .iter()
        .zip(&requests_before)
        .map(|(after, before)| after - before)
        .collect();
    if ctx.best.as_ref().is_none_or(|(w, _, _)| wall < *w) {
        ctx.best = Some((wall, latency, requests));
    }
}

/// Collect the level's disclosure and tear its servers down. Service-time
/// quantiles and connection accounting are cumulative over all windows;
/// per-shard request counts come from the best window so per-shard qps
/// sums to the aggregate.
fn finish_level(ctx: LevelCtx, threads: usize, ops_per_thread: u64) -> LevelResult {
    let (wall, latency, best_requests) = ctx.best.expect("at least one timed window");
    let counters = ctx.router.counters();
    let histograms = ctx.router.histograms();
    let counter = |name: String| {
        counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("{name} missing from disclosure"))
    };
    let per_shard = (0..ctx.shards)
        .map(|i| {
            let hist = histograms
                .iter()
                .find(|(n, _)| *n == format!("shard{i}.net.server.request_micros"))
                .map(|(_, h)| h)
                .expect("per-shard service-time histogram");
            ShardStats {
                requests: best_requests[i as usize],
                p50: hist.value_at_quantile(0.50),
                p90: hist.value_at_quantile(0.90),
                p99: hist.value_at_quantile(0.99),
                accepted: counter(format!("shard{i}.net.server.connections")),
                closed: counter(format!("shard{i}.net.server.closed")),
                open_conns: counter(format!("shard{i}.net.server.open_conns")),
            }
        })
        .collect();

    let LevelCtx { shards, servers, router, round_qps, errors, .. } = ctx;
    drop(router);
    for server in servers {
        server.shutdown();
        server.join();
    }

    LevelResult {
        shards,
        total_ops: threads as u64 * ops_per_thread,
        errors,
        wall,
        latency,
        round_qps,
        per_shard,
    }
}

/// Cumulative `net.server.requests` per shard, read through the router's
/// prefixed disclosure dump.
fn shard_requests(router: &ShardedConnector, shards: u32) -> Vec<u64> {
    let counters = router.counters();
    (0..shards)
        .map(|i| {
            let name = format!("shard{i}.net.server.requests");
            counters
                .iter()
                .find(|(n, _)| *n == name)
                .map(|&(_, v)| v)
                .unwrap_or_else(|| panic!("{name} missing from disclosure"))
        })
        .collect()
}

fn level_json(l: &LevelResult, hw_threads: usize) -> Json {
    let qps = l.total_ops as f64 / l.wall.as_secs_f64().max(1e-9);
    let per_shard: Vec<Json> = l
        .per_shard
        .iter()
        .enumerate()
        .map(|(i, s)| {
            Json::obj([
                ("shard", Json::from(i as u64)),
                ("requests", Json::from(s.requests)),
                ("qps", Json::from(s.requests as f64 / l.wall.as_secs_f64().max(1e-9))),
                ("p50_micros", Json::from(s.p50)),
                ("p90_micros", Json::from(s.p90)),
                ("p99_micros", Json::from(s.p99)),
                ("accepted", Json::from(s.accepted)),
                ("closed", Json::from(s.closed)),
                ("open_conns", Json::from(s.open_conns)),
                ("accepted_minus_closed", Json::from(s.accepted.saturating_sub(s.closed))),
            ])
        })
        .collect();
    Json::obj([
        ("shards", Json::from(l.shards as u64)),
        // An N-shard aggregate can only be expected to out-run fewer
        // shards when the host has hardware threads for N event loops on
        // top of the driver threads.
        ("scaling_valid", Json::from(hw_threads >= l.shards as usize)),
        ("total_ops", Json::from(l.total_ops)),
        ("errors", Json::from(l.errors)),
        ("wall_secs", Json::from(l.wall.as_secs_f64())),
        ("qps", Json::from(qps)),
        ("round_qps", Json::Arr(l.round_qps.iter().map(|&q| Json::from(q)).collect())),
        ("p50_micros", Json::from(l.latency.value_at_quantile(0.50))),
        ("p90_micros", Json::from(l.latency.value_at_quantile(0.90))),
        ("p99_micros", Json::from(l.latency.value_at_quantile(0.99))),
        ("per_shard", Json::Arr(per_shard)),
    ])
}

fn main() {
    let persons: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("persons must be a number"))
        .unwrap_or(1_000);
    let ops_per_thread: u64 = std::env::args()
        .nth(2)
        .map(|a| a.parse().expect("ops_per_thread must be a number"))
        .unwrap_or(500);
    let threads: usize =
        std::env::args().nth(3).map(|a| a.parse().expect("threads must be a number")).unwrap_or(4);
    let hw_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("== ext_sharded: scatter-gather read scaling across shard servers ==");
    println!(
        "   persons={persons} ops_per_thread={ops_per_thread} threads={threads} \
         hw_threads={hw_threads}"
    );

    let ds = snb_bench::dataset(persons);
    let person_ids: Vec<PersonId> = ds.persons.iter().map(|p| p.id).collect();
    let message_ids: Vec<MessageId> = ds.posts.iter().map(|p| p.id).collect();

    let mut mixes: Vec<Json> = Vec::new();
    for (mix_name, scatter_every) in [("routed_reads", 0u64), ("scatter_heavy", 3)] {
        println!("-- mix: {mix_name} (scatter_every={scatter_every}) --");
        let mut table = snb_bench::Table::new(&[
            "shards",
            "agg qps",
            "p50 us",
            "p90 us",
            "p99 us",
            "errors",
            "per-shard qps",
        ]);
        // Stand all three levels up, then interleave their timed windows
        // round-robin so every level samples the same background-load
        // regime; each keeps its fastest window (see `run_window`).
        const BEST_OF: usize = 5;
        let mut ctxs: Vec<LevelCtx> = [1u32, 2, 4]
            .iter()
            .map(|&shards| {
                setup_level(&ds, shards, threads, scatter_every, &person_ids, &message_ids)
            })
            .collect();
        for _ in 0..BEST_OF {
            for ctx in &mut ctxs {
                run_window(ctx, threads, ops_per_thread, scatter_every, &person_ids, &message_ids);
            }
        }
        let mut levels: Vec<Json> = Vec::new();
        for ctx in ctxs {
            let level = finish_level(ctx, threads, ops_per_thread);
            let wall = level.wall.as_secs_f64().max(1e-9);
            let per_shard_qps: Vec<String> = level
                .per_shard
                .iter()
                .map(|s| format!("{:.0}", s.requests as f64 / wall))
                .collect();
            table.row(&[
                level.shards.to_string(),
                format!("{:.0}", level.total_ops as f64 / wall),
                level.latency.value_at_quantile(0.50).to_string(),
                level.latency.value_at_quantile(0.90).to_string(),
                level.latency.value_at_quantile(0.99).to_string(),
                level.errors.to_string(),
                per_shard_qps.join("/"),
            ]);
            levels.push(level_json(&level, hw_threads));
        }
        table.print();
        mixes.push(Json::obj([
            ("mix", Json::from(mix_name)),
            ("scatter_every", Json::from(scatter_every)),
            ("levels", Json::Arr(levels)),
        ]));
    }

    let doc = Json::obj([
        ("bench", Json::from("ext_sharded")),
        ("persons", Json::from(persons)),
        ("ops_per_thread", Json::from(ops_per_thread)),
        ("threads", Json::from(threads as u64)),
        ("hw_threads", Json::from(hw_threads as u64)),
        ("mixes", Json::Arr(mixes)),
    ]);
    std::fs::write("BENCH_sharded.json", doc.render_pretty(2)).expect("write json");
    println!("   wrote BENCH_sharded.json");
}
