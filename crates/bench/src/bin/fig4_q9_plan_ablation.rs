//! Fig. 4 / §3 — the Q9 intended plan versus the wrong join type.
//!
//! "In the HyPer database system, replacing index-nested loop with hash in
//! [the first join] results in 50% penalty, and similar effects are
//! observed in the Virtuoso RDBMS." Our Naive engine for Q9 is exactly the
//! hash-join/full-scan plan; the penalty should be large and grow with the
//! dataset (the scan is O(|messages|), the intended plan sublinear).

use snb_bench::{bulk_store, dataset_with, fmt_duration, mean_query_time, Table};
use snb_datagen::GeneratorConfig;
use snb_queries::Engine;

fn main() {
    println!("Fig 4: Q9 plan ablation (index-nested-loop vs hash/scan)\n");
    let mut t =
        Table::new(&["persons", "messages", "intended (INL)", "naive (hash+scan)", "penalty"]);
    for persons in [500u64, 1_000, 2_000, 4_000] {
        let ds = dataset_with(
            GeneratorConfig::with_persons(persons).threads(snb_bench::num_threads()).seed(42),
        );
        let store = bulk_store(&ds);
        let bindings = snb_params::curated_bindings(&ds, 8);
        let intended = mean_query_time(&store, Engine::Intended, bindings.all(9));
        let naive = mean_query_time(&store, Engine::Naive, bindings.all(9));
        t.row(&[
            persons.to_string(),
            ds.message_count().to_string(),
            fmt_duration(intended),
            fmt_duration(naive),
            format!("{:.0}%", (naive.as_secs_f64() / intended.as_secs_f64() - 1.0) * 100.0),
        ]);
    }
    t.print();
    println!("\npaper anchor: >=50% penalty for the wrong join type, growing with scale");
}
