//! Extension experiment — the cost of the wire (snb-net): the same
//! workload driven in-process vs through `RemoteConnector` → loopback TCP
//! → `Server`. The paper's driver always talks to its SUT over a client/
//! server boundary; this quantifies what that boundary costs per operation
//! (serialization + syscalls + one round trip) against the in-process
//! upper bound.

use snb_bench::{dataset, Table};
use snb_driver::{mix, run, DriverConfig, StoreConnector};
use snb_net::{RemoteConnector, Server};
use snb_queries::Engine;
use snb_store::Store;
use std::sync::Arc;

fn main() {
    let ds = dataset(3_000);
    let items = mix::updates_only(&ds);
    let take = items.len().min(30_000);
    let slice = &items[..take];
    println!("net round-trip ablation: {} update ops over loopback TCP\n", slice.len());

    let mut t = Table::new(&[
        "partitions",
        "in-process ops/s",
        "loopback ops/s",
        "loopback/in-proc",
        "rtt p50 us",
        "rtt p99 us",
    ]);
    for partitions in [1usize, 2, 4, 8] {
        let config = DriverConfig { partitions, ..DriverConfig::default() };

        let local_store = Arc::new(Store::new());
        local_store.bulk_load(&ds);
        let local = StoreConnector::new(local_store, Engine::Intended);
        let in_proc = run(slice, &local, &config).unwrap().ops_per_second;

        let remote_store = Arc::new(Store::new());
        remote_store.bulk_load(&ds);
        let server = Server::bind(
            "127.0.0.1:0",
            Arc::new(StoreConnector::new(remote_store, Engine::Intended)),
        )
        .unwrap();
        let client = RemoteConnector::connect(server.local_addr().to_string()).unwrap();
        let loopback = run(slice, &client, &config).unwrap().ops_per_second;
        let rtt_p50 = client.metrics().request_micros.value_at_quantile(0.50);
        let rtt_p99 = client.metrics().request_micros.value_at_quantile(0.99);
        server.shutdown();
        server.join();

        t.row(&[
            partitions.to_string(),
            format!("{in_proc:.0}"),
            format!("{loopback:.0}"),
            format!("{:.2}x", loopback / in_proc),
            rtt_p50.to_string(),
            rtt_p99.to_string(),
        ]);
    }
    t.print();
    println!("\npaper shape: the SUT boundary costs a fixed per-op round trip, so the");
    println!("relative penalty shrinks as per-op work grows and with more partitions");
    println!("(round trips overlap across connections).");
}
