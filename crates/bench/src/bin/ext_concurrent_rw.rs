//! Extension — mixed read/write throughput of the latch-free concurrent
//! path (PR 5): N writer threads apply disjoint synthetic update streams
//! through the striped commit pipeline while M pinned readers run a Q2
//! mix on the same store. For each writer count the trial is re-run on a
//! freshly bulk-loaded store and the best of three trials is kept.
//!
//! Reported per configuration: write ops/s, concurrent read ops/s, the
//! scaling factor versus the single-writer configuration, the
//! `store.write.shard_conflicts` counter (stripe collisions that had to
//! block), and `store.write.publish_parks` (publication-ring wraparound
//! parks — a straggler-pathology signal). On a host with fewer hardware
//! threads than writers the "scaling" column measures scheduler share,
//! not parallelism, so each configuration carries an explicit
//! `scaling_valid` flag (`hw_threads >= writers`) and downstream
//! consumers (`ci/check_concurrent_rw.py`) must not read an invalid row
//! as a multi-core claim. The acceptance target (≥ 2x at 4 writers)
//! applies only to valid rows.
//!
//! Writes `BENCH_concurrent_rw.json` (consumed by the CI perf-smoke step
//! and EXPERIMENTS.md).
//!
//! Usage: `cargo run -p snb-bench --release --bin ext_concurrent_rw
//! [persons] [persons_per_writer]`

use snb_core::dict::names::Gender;
use snb_core::schema::{Comment, Forum, ForumKind, Knows, Like, Person, Post};
use snb_core::time::SimTime;
use snb_core::update::UpdateOp;
use snb_core::{ForumId, MessageId, PersonId, TagId};
use snb_obs::{HistogramSnapshot, Json};
use snb_queries::params::Q2Params;
use snb_queries::{complex, Engine};
use snb_store::Store;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

const READERS: usize = 2;
const TRIALS: usize = 3;

fn person(id: u64, t: i64) -> Person {
    Person {
        id: PersonId(id),
        first_name: "Karl",
        last_name: "Muller",
        gender: Gender::Male,
        birthday: SimTime(0),
        creation_date: SimTime(t),
        city: 0,
        country: 0,
        browser: "Chrome",
        location_ip: String::new(),
        languages: vec!["de"],
        emails: vec![],
        interests: vec![TagId(1)],
        study_at: None,
        work_at: vec![],
    }
}

/// One writer's self-contained stream over the id window at `base`
/// (disjoint windows commute across threads): persons, a friendship
/// chain, two forums, then a post + comment + like per person — the full
/// update-op shape mix of Table 4, minus memberships.
fn writer_stream(base: u64, persons: u64) -> Vec<UpdateOp> {
    let mut ops = Vec::new();
    let mut t = base as i64;
    let mut date = move || {
        t += 1;
        SimTime(t)
    };
    for i in 0..persons {
        ops.push(UpdateOp::AddPerson(person(base + i, date().0)));
        if i > 0 {
            ops.push(UpdateOp::AddFriendship(Knows {
                a: PersonId(base + i - 1),
                b: PersonId(base + i),
                creation_date: date(),
            }));
        }
    }
    for f in 0..2u64 {
        ops.push(UpdateOp::AddForum(Forum {
            id: ForumId(base + f),
            title: "group".into(),
            moderator: PersonId(base),
            creation_date: date(),
            tags: vec![TagId(1)],
            kind: ForumKind::Group,
        }));
    }
    for i in 0..persons {
        let post_id = base + i * 3;
        let forum = ForumId(base + i % 2);
        ops.push(UpdateOp::AddPost(Post {
            id: MessageId(post_id),
            author: PersonId(base + i),
            forum,
            creation_date: date(),
            content: "hello".into(),
            image_file: None,
            tags: vec![TagId(1)],
            language: "de",
            country: 0,
        }));
        ops.push(UpdateOp::AddComment(Comment {
            id: MessageId(post_id + 1),
            author: PersonId(base + (i + 1) % persons),
            creation_date: date(),
            content: "re".into(),
            reply_to: MessageId(post_id),
            root_post: MessageId(post_id),
            forum,
            tags: vec![],
            country: 0,
        }));
        ops.push(UpdateOp::AddPostLike(Like {
            person: PersonId(base + (i + 2) % persons),
            message: MessageId(post_id),
            creation_date: date(),
        }));
    }
    ops
}

/// First id past every dataset entity, so writer windows never collide
/// with bulk-loaded rows.
fn id_floor(ds: &snb_datagen::Dataset) -> u64 {
    let persons = ds.persons.iter().map(|p| p.id.raw()).max().unwrap_or(0);
    let forums = ds.forums.iter().map(|f| f.id.raw()).max().unwrap_or(0);
    let posts = ds.posts.iter().map(|p| p.id.raw()).max().unwrap_or(0);
    let comments = ds.comments.iter().map(|c| c.id.raw()).max().unwrap_or(0);
    persons.max(forums).max(posts).max(comments) + 1
}

struct Trial {
    write_ops_per_s: f64,
    read_ops_per_s: f64,
    shard_conflicts: u64,
    /// Publication-ring wraparound parks (`store.write.publish_parks`).
    publish_parks: u64,
    /// Write-pipeline stage histograms (`store.stage.*`) plus WAL fsync
    /// and the merged stripe-wait distribution, straight from the store.
    stage_histograms: Vec<(String, HistogramSnapshot)>,
    /// Per-stripe conflict counts — the contention heatmap.
    stripe_conflicts: Vec<u64>,
    /// Per-stripe acquire-wait distributions (nanoseconds), index-aligned
    /// with `stripe_conflicts`.
    stripe_waits: Vec<HistogramSnapshot>,
    /// End-of-trial storage footprint (bulk + everything the writers
    /// committed).
    storage: snb_store::StorageStats,
}

/// One timed run: `streams.len()` writers + [`READERS`] pinned readers.
/// The write clock stops when the last writer finishes; readers are then
/// flagged down, so read throughput is measured over the write window.
fn run_trial(ds: &snb_datagen::Dataset, streams: &[Vec<UpdateOp>], dataset_persons: u64) -> Trial {
    let store = Store::new();
    store.bulk_load(ds);
    let writers = streams.len();
    // The main thread joins the barrier and stamps the start clock at
    // release, strictly before any writer can begin (stamping inside one
    // writer undercounts: on an oversubscribed host other writers may run
    // to completion before that writer is ever scheduled).
    let start = Barrier::new(writers + READERS + 1);
    let done = AtomicBool::new(false);
    let writers_left = AtomicUsize::new(writers);
    let reads = AtomicU64::new(0);
    let write_wall: Mutex<Option<Duration>> = Mutex::new(None);
    let t0: Mutex<Option<Instant>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for ops in streams {
            let (store, start, done, writers_left) = (&store, &start, &done, &writers_left);
            let (write_wall, t0) = (&write_wall, &t0);
            scope.spawn(move || {
                start.wait();
                for op in ops {
                    store.apply(op).expect("disjoint stream op must commit");
                }
                if writers_left.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let started = t0.lock().unwrap().expect("main stamped the start");
                    *write_wall.lock().unwrap() = Some(started.elapsed());
                    done.store(true, Ordering::Release);
                }
            });
        }
        for r in 0..READERS {
            let (store, start, done, reads) = (&store, &start, &done, &reads);
            scope.spawn(move || {
                start.wait();
                let mut i = r as u64;
                while !done.load(Ordering::Acquire) {
                    let pin = store.pinned();
                    let params = Q2Params {
                        person: PersonId(i % dataset_persons),
                        max_date: SimTime(i64::MAX),
                    };
                    std::hint::black_box(complex::q2::run(&pin, Engine::Intended, &params));
                    reads.fetch_add(1, Ordering::Relaxed);
                    i += 7;
                }
            });
        }
        // Stamp strictly before releasing the barrier so every writer
        // observes a set start time.
        *t0.lock().unwrap() = Some(Instant::now());
        start.wait();
    });
    let wall = write_wall.into_inner().unwrap().expect("last writer stamped the wall");
    let total_ops: usize = streams.iter().map(Vec::len).sum();
    let counters = store.counters();
    let named = counters.snapshot();
    let counter = |name: &str| named.iter().find(|&&(n, _)| n == name).map_or(0, |&(_, v)| v);
    let stripe_conflicts = counters.stripes.conflict_counts();
    let stripe_waits =
        (0..stripe_conflicts.len()).map(|i| counters.stripes.wait_hist(i).snapshot()).collect();
    Trial {
        write_ops_per_s: total_ops as f64 / wall.as_secs_f64().max(1e-9),
        read_ops_per_s: reads.load(Ordering::Relaxed) as f64 / wall.as_secs_f64().max(1e-9),
        shard_conflicts: counter("store.write.shard_conflicts"),
        publish_parks: counter("store.write.publish_parks"),
        stage_histograms: counters.histogram_snapshots(),
        stripe_conflicts,
        stripe_waits,
        storage: store.pinned().storage_stats(),
    }
}

/// Histogram summary for the JSON report: count/mean/p50/p99/max, unit in
/// the histogram's name.
fn hist_json(h: &HistogramSnapshot) -> Json {
    Json::obj([
        ("count", Json::from(h.count)),
        ("sum", Json::from(h.sum)),
        ("mean", Json::from(h.mean())),
        ("p50", Json::from(h.value_at_quantile(0.50))),
        ("p99", Json::from(h.value_at_quantile(0.99))),
        ("max", Json::from(h.max)),
    ])
}

fn main() {
    let persons: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("persons must be a number"))
        .unwrap_or(1_000);
    let per_writer: u64 = std::env::args()
        .nth(2)
        .map(|a| a.parse().expect("persons_per_writer must be a number"))
        .unwrap_or(400);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("== ext_concurrent_rw: striped writers + pinned readers ==");
    println!("   persons={persons} persons_per_writer={per_writer} hw_threads={cores}");

    let ds = snb_bench::dataset(persons);
    let floor = id_floor(&ds);
    let dataset_persons = ds.persons.len() as u64;

    let mut table = snb_bench::Table::new(&[
        "writers",
        "write ops/s",
        "scaling",
        "read ops/s (concurrent)",
        "shard conflicts",
    ]);
    let mut configs: Vec<Json> = Vec::new();
    let mut single_writer = 0.0f64;
    for &writers in &[1usize, 2, 4, 8] {
        // Fixed per-writer work: N writers apply N streams, so total work
        // grows with N and perfect scaling holds wall time flat.
        let streams: Vec<Vec<UpdateOp>> = (0..writers)
            .map(|w| writer_stream(floor + (w as u64) * (per_writer * 4), per_writer))
            .collect();
        let best = (0..TRIALS)
            .map(|_| run_trial(&ds, &streams, dataset_persons))
            .max_by(|a, b| a.write_ops_per_s.total_cmp(&b.write_ops_per_s))
            .unwrap();
        if writers == 1 {
            single_writer = best.write_ops_per_s;
        }
        let scaling = best.write_ops_per_s / single_writer.max(1e-9);
        table.row(&[
            writers.to_string(),
            format!("{:.0}", best.write_ops_per_s),
            format!("{scaling:.2}x"),
            format!("{:.0}", best.read_ops_per_s),
            best.shard_conflicts.to_string(),
        ]);

        println!("   writers={writers}: {}", snb_bench::storage_line(&best.storage));

        // Stage attribution: which pipeline stage the writers' time went
        // to, from the store's nanosecond stage histograms. The
        // `validate_failed` split belongs to rejected transactions, which
        // never tile a committed apply — keep it out of the pipeline sum.
        let pipeline: Vec<&(String, HistogramSnapshot)> = best
            .stage_histograms
            .iter()
            .filter(|(n, h)| {
                n.starts_with("store.stage.")
                    && n != "store.stage.validate_failed_nanos"
                    && !h.is_empty()
            })
            .collect();
        let pipeline_sum: u64 = pipeline.iter().map(|(_, h)| h.sum).sum();
        if let Some((name, h)) = pipeline.iter().max_by_key(|(_, h)| h.sum).map(|&(n, h)| (n, h)) {
            println!(
                "   writers={writers}: dominant stage {} ({:.0}% of pipeline, mean {:.0} ns, p99 {} ns)",
                name.trim_start_matches("store.stage."),
                100.0 * h.sum as f64 / pipeline_sum.max(1) as f64,
                h.mean(),
                h.value_at_quantile(0.99),
            );
        }
        let stages = Json::obj(
            best.stage_histograms
                .iter()
                .filter(|(_, h)| !h.is_empty())
                .map(|(n, h)| (n.clone(), hist_json(h))),
        );

        // Stripe contention heatmap: total + per-stripe conflicts, the
        // merged acquire-wait distribution, and the hottest stripes.
        let conflicts_total: u64 = best.stripe_conflicts.iter().sum();
        let mut hot: Vec<(usize, u64)> =
            best.stripe_conflicts.iter().copied().enumerate().filter(|&(_, c)| c > 0).collect();
        hot.sort_by_key(|&(i, c)| (std::cmp::Reverse(c), i));
        let hottest = Json::arr(hot.iter().take(8).map(|&(i, c)| {
            Json::obj([
                ("stripe", Json::from(i as u64)),
                ("conflicts", Json::from(c)),
                ("wait_p99_nanos", Json::from(best.stripe_waits[i].value_at_quantile(0.99))),
            ])
        }));
        let mut merged_wait = HistogramSnapshot::default();
        for w in &best.stripe_waits {
            merged_wait.merge(w);
        }

        // A scaling figure measured with fewer hardware threads than
        // writers is a scheduler-share artifact, not parallelism: flag it
        // so the JSON cannot be misread as a multi-core result.
        let scaling_valid = cores >= writers;
        if !scaling_valid {
            println!("   writers={writers}: scaling marked INVALID (hw_threads={cores} < writers)");
        }
        configs.push(Json::obj([
            ("writers", Json::from(writers as u64)),
            ("readers", Json::from(READERS as u64)),
            ("write_ops_per_s", Json::from(best.write_ops_per_s)),
            ("read_ops_per_s", Json::from(best.read_ops_per_s)),
            ("scaling_vs_single_writer", Json::from(scaling)),
            ("scaling_valid", Json::from(scaling_valid)),
            ("shard_conflicts", Json::from(best.shard_conflicts)),
            ("publish_parks", Json::from(best.publish_parks)),
            ("stages", stages),
            (
                "stripes",
                Json::obj([
                    ("conflicts_total", Json::from(conflicts_total)),
                    (
                        "conflicts_by_stripe",
                        Json::arr(best.stripe_conflicts.iter().map(|&c| Json::from(c))),
                    ),
                    ("wait_nanos", hist_json(&merged_wait)),
                    ("hottest", hottest),
                ]),
            ),
        ]));
    }
    table.print();
    println!(
        "   note: scaling is meaningful on multi-core hosts; this host has {cores} hardware \
         thread(s)"
    );

    let doc = Json::obj([
        ("bench", Json::from("ext_concurrent_rw")),
        ("persons", Json::from(persons)),
        ("persons_per_writer", Json::from(per_writer)),
        ("readers", Json::from(READERS as u64)),
        ("hw_threads", Json::from(cores as u64)),
        ("configs", Json::Arr(configs)),
    ]);
    std::fs::write("BENCH_concurrent_rw.json", doc.render_pretty(2)).expect("write json");
    println!("   wrote BENCH_concurrent_rw.json");
}
