//! Fig. 3b — DATAGEN scale-up: generation time versus scale factor and
//! worker count (the paper shows Hadoop clusters of 1/3/10 nodes; we show
//! 1/2/4/8 threads on one node — same shape, near-linear in SF, dropping
//! with parallelism).

use snb_bench::{time, Table};
use snb_datagen::{generate, GeneratorConfig};

fn main() {
    println!("Fig 3b: generation time (seconds) by scale factor and threads\n");
    let thread_counts = [1usize, 2, 4, 8];
    let mut t = Table::new(&[
        "SF",
        "persons",
        "1 thread",
        "2 threads",
        "4 threads",
        "8 threads",
        "speedup@8",
    ]);
    for sf in [0.05, 0.1, 0.2] {
        let mut row = vec![format!("{sf}")];
        let mut t1 = 0.0;
        let mut t8 = 0.0;
        let mut persons = 0;
        for &threads in &thread_counts {
            let config = GeneratorConfig::scale_factor(sf).threads(threads).seed(42);
            persons = config.n_persons;
            let (ds, d) = time(|| generate(config).unwrap());
            std::hint::black_box(ds.message_count());
            if threads == 1 {
                t1 = d.as_secs_f64();
                row.push(persons.to_string());
            }
            if threads == 8 {
                t8 = d.as_secs_f64();
            }
            row.push(format!("{:.2}", d.as_secs_f64()));
        }
        let _ = persons;
        row.push(format!("{:.2}x", t1 / t8.max(1e-9)));
        t.row(&row);
    }
    t.print();
    println!("\npaper shape: time grows ~linearly with SF; more workers shift the curve down");
}
