//! Fig. 2a — post density over time: event-driven versus uniform post
//! generation (§2.2). With events enabled the density shows spikes of
//! different magnitudes; uniform stays flat.

use snb_bench::{dataset_with, Table};
use snb_core::time::{SimTime, MILLIS_PER_DAY};
use snb_datagen::GeneratorConfig;

fn density(event_driven: bool) -> (Vec<usize>, f64) {
    let ds = dataset_with(
        GeneratorConfig::with_persons(2_000)
            .events(event_driven)
            .threads(snb_bench::num_threads())
            .seed(42),
    );
    let days = (SimTime::SIM_END.since(SimTime::SIM_START) / MILLIS_PER_DAY) as usize;
    let mut buckets = vec![0usize; days / 7 + 1]; // weekly buckets
    let last = buckets.len() - 1;
    for p in &ds.posts {
        let d = (p.creation_date.since(SimTime::SIM_START) / MILLIS_PER_DAY) as usize / 7;
        buckets[d.min(last)] += 1;
    }
    // Detrended spikiness: the network grows over the simulation, so raw
    // max/mean confounds growth with trending events. Normalize each week
    // against a centered rolling mean and take the largest excursion.
    let mut spike: f64 = 1.0;
    for w in 4..buckets.len().saturating_sub(4) {
        let local: usize = buckets[w - 4..=w + 4].iter().sum();
        let local_mean = (local - buckets[w]) as f64 / 8.0;
        if local_mean > 20.0 {
            spike = spike.max(buckets[w] as f64 / local_mean);
        }
    }
    (buckets, spike)
}

fn main() {
    let (uniform, r_uniform) = density(false);
    let (events, r_events) = density(true);
    println!("Fig 2a: weekly post counts, uniform vs event-driven\n");
    let mut t = Table::new(&["week", "uniform", "event-driven", "spike bar"]);
    for w in (0..uniform.len()).step_by(6) {
        let bar = "#".repeat(events[w] / 40);
        t.row(&[w.to_string(), uniform[w].to_string(), events[w].to_string(), bar]);
    }
    t.print();
    println!("\ndetrended peak ratio (week vs rolling mean): uniform {r_uniform:.2}, event-driven {r_events:.2}");
    println!("paper shape: event-driven shows spikes of different magnitude; uniform is flat");
    assert!(r_events > r_uniform, "event-driven generation must spike");
}
