//! # ldbc-snb
//!
//! Facade crate for the LDBC Social Network Benchmark (Interactive workload)
//! reproduction. Re-exports the workspace crates under stable module names:
//!
//! - [`core`]: schema, ids, simulation time, RNG, dictionaries
//! - [`datagen`]: the correlated social-network generator (DATAGEN)
//! - [`store`]: the transactional in-memory property-graph store
//! - [`queries`]: complex reads Q1–Q14, short reads S1–S7, updates U1–U8
//! - [`params`]: parameter curation
//! - [`driver`]: the dependency-aware workload driver
//! - [`obs`]: latency histograms, counters, and query operator profiles
//! - [`algorithms`]: the SNB-Algorithms workload (PageRank, communities, ...)
//! - [`bi`]: the SNB-BI workload draft (scan-heavy analytical queries)
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use snb_algorithms as algorithms;
pub use snb_bi as bi;
pub use snb_core as core;
pub use snb_datagen as datagen;
pub use snb_driver as driver;
pub use snb_net as net;
pub use snb_obs as obs;
pub use snb_params as params;
pub use snb_queries as queries;
pub use snb_store as store;
