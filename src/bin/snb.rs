//! `snb` — command-line front end for the benchmark kit.
//!
//! ```text
//! snb generate --persons 5000 --out ./data         # CSV bulk + update stream
//! snb rdf      --persons 5000 --out ./data.nt      # N-Triples bulk
//! snb stats    --persons 5000                      # Table 3-style statistics
//! snb run      --persons 2000 [--accel N] [--partitions N] [--naive] [--json]
//!              [--wal PATH] [--sync never|commit|group|group:B:DELAY_US]
//!              [--connect HOST:PORT[,HOST:PORT…]] [--request-timeout SECS]
//!              [--trace PATH] [--trace-sample N]
//!                                                  # full benchmark + disclosure
//! snb serve    --persons 2000 [--addr HOST:PORT] [--naive] [--shard I/N]
//!              [--wal PATH] [--sync ...]           # networked SUT (see snb-net)
//! ```
//!
//! `serve` and `run --connect` split the benchmark across the paper's
//! driver/SUT process boundary: the server owns the store, the driver owns
//! the workload, and both must be given the same `--persons`/`--seed` so
//! the generated dataset (and thus the update stream) matches.
//!
//! A *sharded* SUT runs N `serve --shard i/N` processes — each bulk-loads
//! only its forum-partitioned slice plus the replicated person/knows graph
//! — and one `run --connect addr0,addr1,…` driver, whose address order
//! must match the shard order (verified over the GCT RPC at connect).
//!
//! Argument handling is deliberately dependency-free; every subcommand maps
//! onto the public library API.

use ldbc_snb::core::shard::ShardMap;
use ldbc_snb::datagen::{generate, serializer, GeneratorConfig};
use ldbc_snb::driver::{
    build_mix, full_disclosure, full_disclosure_json, run, Connector, DriverConfig, StoreConnector,
};
use ldbc_snb::net::{NetConfig, RemoteConnector, Server, ServerConfig, ShardedConnector};
use ldbc_snb::params::curated_bindings;
use ldbc_snb::queries::Engine;
use ldbc_snb::store::{Store, SyncPolicy};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    command: String,
    persons: u64,
    seed: u64,
    threads: usize,
    out: PathBuf,
    accel: Option<f64>,
    partitions: usize,
    naive: bool,
    json: bool,
    wal: Option<PathBuf>,
    sync: SyncPolicy,
    addr: String,
    shard: Option<(u32, u32)>,
    connect: Option<String>,
    request_timeout: f64,
    trace: Option<PathBuf>,
    trace_sample: u64,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: snb <generate|rdf|stats|run|serve> [--persons N] [--seed N] [--threads N]\n\
         \x20          [--out PATH] [--accel N] [--partitions N] [--naive] [--json]\n\
         \x20          [--wal PATH] [--sync never|commit|group|group:BATCH:DELAY_US]\n\
         \x20          [--addr HOST:PORT] [--shard I/N] [--connect HOST:PORT[,HOST:PORT...]]\n\
         \x20          [--request-timeout SECS] [--trace PATH] [--trace-sample N]"
    );
    ExitCode::from(2)
}

fn parse() -> Result<Args, ExitCode> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let mut args = Args {
        command,
        persons: 1_000,
        seed: 42,
        threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2),
        out: PathBuf::from("./snb-data"),
        accel: None,
        partitions: 4,
        naive: false,
        json: false,
        wal: None,
        sync: SyncPolicy::default(),
        addr: "127.0.0.1:7455".to_string(),
        shard: None,
        connect: None,
        request_timeout: 10.0,
        trace: None,
        trace_sample: 1,
    };
    let rest: Vec<String> = argv.collect();
    let mut i = 0;
    let value = |rest: &[String], i: &mut usize| -> Result<String, ExitCode> {
        *i += 1;
        rest.get(*i - 1).cloned().ok_or_else(usage)
    };
    while i < rest.len() {
        let flag = rest[i].clone();
        i += 1;
        match flag.as_str() {
            "--persons" => args.persons = value(&rest, &mut i)?.parse().map_err(|_| usage())?,
            "--seed" => args.seed = value(&rest, &mut i)?.parse().map_err(|_| usage())?,
            "--threads" => args.threads = value(&rest, &mut i)?.parse().map_err(|_| usage())?,
            "--out" => args.out = PathBuf::from(value(&rest, &mut i)?),
            "--accel" => args.accel = Some(value(&rest, &mut i)?.parse().map_err(|_| usage())?),
            "--partitions" => {
                args.partitions = value(&rest, &mut i)?.parse().map_err(|_| usage())?
            }
            "--naive" => args.naive = true,
            "--json" => args.json = true,
            "--wal" => args.wal = Some(PathBuf::from(value(&rest, &mut i)?)),
            "--sync" => {
                let spec = value(&rest, &mut i)?;
                args.sync = SyncPolicy::parse(&spec).ok_or_else(|| {
                    eprintln!("bad --sync policy: {spec}");
                    usage()
                })?;
            }
            "--addr" => args.addr = value(&rest, &mut i)?,
            "--shard" => {
                let spec = value(&rest, &mut i)?;
                let parsed = spec.split_once('/').and_then(|(idx, n)| {
                    let idx: u32 = idx.parse().ok()?;
                    let n: u32 = n.parse().ok()?;
                    (n >= 1 && idx < n).then_some((idx, n))
                });
                args.shard = Some(parsed.ok_or_else(|| {
                    eprintln!("bad --shard spec: {spec} (want I/N with I < N)");
                    usage()
                })?);
            }
            "--connect" => args.connect = Some(value(&rest, &mut i)?),
            "--request-timeout" => {
                args.request_timeout = value(&rest, &mut i)?.parse().map_err(|_| usage())?
            }
            "--trace" => args.trace = Some(PathBuf::from(value(&rest, &mut i)?)),
            "--trace-sample" => {
                args.trace_sample = value(&rest, &mut i)?.parse().map_err(|_| usage())?
            }
            other => {
                eprintln!("unknown flag: {other}");
                return Err(usage());
            }
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let config = GeneratorConfig::with_persons(args.persons).seed(args.seed).threads(args.threads);
    match args.command.as_str() {
        "generate" => {
            let ds = generate(config).expect("generation failed");
            let rows = serializer::write_csv(&ds, &args.out).expect("csv write failed");
            println!("wrote {} rows of bulk CSV + update stream to {}", rows, args.out.display());
            ExitCode::SUCCESS
        }
        "rdf" => {
            let ds = generate(config).expect("generation failed");
            let out =
                if args.out.extension().is_some() { args.out } else { args.out.join("data.nt") };
            if let Some(parent) = out.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            let triples =
                ldbc_snb::datagen::rdf::write_ntriples(&ds, &out).expect("rdf write failed");
            println!("wrote {} triples to {}", triples, out.display());
            ExitCode::SUCCESS
        }
        "stats" => {
            let ds = generate(config).expect("generation failed");
            let s = ds.stats();
            println!("persons:  {}", s.persons);
            println!("friends:  {} (directed rows)", s.friends);
            println!("messages: {}", s.messages);
            println!("forums:   {}", s.forums);
            println!("nodes:    {}", s.nodes);
            println!("edges:    {}", s.edges);
            println!("updates:  {}", ds.update_stream().len());
            ExitCode::SUCCESS
        }
        "run" => {
            let ds = generate(config).expect("generation failed");
            let bindings = curated_bindings(&ds, 16);
            let items = build_mix(&ds, &bindings);
            let net_config = NetConfig {
                request_timeout: Duration::from_secs_f64(args.request_timeout),
                ..NetConfig::default()
            };
            // Kept when driving a sharded SUT, for the post-run GCT
            // dependency-visibility verification.
            let mut sharded: Option<Arc<ShardedConnector>> = None;
            let conn: Box<dyn Connector> = match &args.connect {
                // Sharded SUT: one address per `serve --shard i/N`
                // process, in shard order.
                Some(spec) if spec.contains(',') => {
                    let addrs: Vec<&str> =
                        spec.split(',').map(str::trim).filter(|a| !a.is_empty()).collect();
                    let router = Arc::new(
                        ShardedConnector::with_config(&addrs, net_config)
                            .expect("sharded connect failed"),
                    );
                    router.seed_routes(ds.message_routes());
                    sharded = Some(Arc::clone(&router));
                    Box::new(router)
                }
                // Networked SUT: the workload crosses the wire; the server
                // (started with the same --persons/--seed) owns the store.
                Some(addr) => Box::new(
                    RemoteConnector::with_config(addr.clone(), net_config).expect("connect failed"),
                ),
                None => {
                    let store = match &args.wal {
                        Some(path) => Arc::new(
                            Store::with_wal_policy(path, args.sync).expect("wal create failed"),
                        ),
                        None => Arc::new(Store::new()),
                    };
                    store.bulk_load(&ds);
                    let engine = if args.naive { Engine::Naive } else { Engine::Intended };
                    Box::new(StoreConnector::new(store, engine))
                }
            };
            let driver_config = DriverConfig {
                partitions: args.partitions,
                acceleration: args.accel,
                ..DriverConfig::default()
            };
            if args.trace.is_some() {
                ldbc_snb::obs::trace::enable(args.trace_sample);
            }
            let report = run(&items, conn.as_ref(), &driver_config).expect("benchmark run failed");
            if let Some(router) = &sharded {
                router.gct_check().expect("GCT dependency-visibility check failed");
                eprintln!(
                    "GCT check passed: all {} shards reached the broadcast horizon",
                    router.shard_count()
                );
            }
            if let Some(path) = &args.trace {
                ldbc_snb::obs::trace::disable();
                let spans = ldbc_snb::obs::trace::drain();
                let doc = ldbc_snb::obs::trace::export_chrome_trace(&spans);
                std::fs::write(path, doc.render_pretty(1)).expect("trace write failed");
                eprintln!("wrote {} spans to {}", spans.len(), path.display());
            }
            if args.json {
                println!("{}", full_disclosure_json(&report).render_pretty(2));
            } else {
                println!("{}", full_disclosure(&report));
            }
            ExitCode::SUCCESS
        }
        "serve" => {
            let ds = generate(config).expect("generation failed");
            let store = match &args.wal {
                Some(path) => {
                    Arc::new(Store::with_wal_policy(path, args.sync).expect("wal create failed"))
                }
                None => Arc::new(Store::new()),
            };
            let server_config = match args.shard {
                Some((shard, shards)) => {
                    // Load only this shard's forum slice plus the
                    // replicated person/knows graph.
                    store.bulk_load_sharded(
                        &ds,
                        ds.config.update_split,
                        args.threads,
                        ShardMap::new(shards),
                        shard,
                    );
                    ServerConfig { shard, shards, ..ServerConfig::default() }
                }
                None => {
                    store.bulk_load(&ds);
                    ServerConfig::default()
                }
            };
            let engine = if args.naive { Engine::Naive } else { Engine::Intended };
            let server = Server::bind_with_config(
                args.addr.as_str(),
                Arc::new(StoreConnector::new(store, engine)),
                server_config,
            )
            .expect("bind failed");
            let shard_note = match args.shard {
                Some((i, n)) => format!(" shard {i}/{n}"),
                None => String::new(),
            };
            println!(
                "serving {} persons (seed {}){} on {} — drive with: snb run --persons {} --seed {} --connect {}",
                args.persons,
                args.seed,
                shard_note,
                server.local_addr(),
                args.persons,
                args.seed,
                server.local_addr()
            );
            // Serve until the process is killed.
            server.join();
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
