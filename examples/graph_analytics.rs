//! The SNB-Algorithms workload on the shared dataset: PageRank, BFS,
//! community detection, clustering (§1's third workload) — demonstrating
//! the paper's premise that one correlated dataset serves interactive,
//! BI, and analytical workloads alike.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use ldbc_snb::algorithms::{
    average_clustering, bfs_stats, connected_components, label_propagation, louvain_communities,
    modularity, pagerank, top_k, triangle_count, CsrGraph, PageRankConfig,
};
use ldbc_snb::datagen::{generate, GeneratorConfig};

fn main() {
    let ds = generate(GeneratorConfig::with_persons(3_000).threads(4).seed(31)).unwrap();
    let g = CsrGraph::from_dataset(&ds);
    println!(
        "knows graph: {} vertices, {} edges, avg degree {:.1}\n",
        g.vertex_count(),
        g.edge_count(),
        2.0 * g.edge_count() as f64 / g.vertex_count() as f64
    );

    // Connectivity: the SNB friendship graph is designed to be one giant
    // component.
    let (labels, n_components) = connected_components(&g);
    let mut sizes = vec![0usize; n_components];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "components: {n_components}; largest covers {:.1}% of persons",
        100.0 * sizes[0] as f64 / g.vertex_count() as f64
    );

    // PageRank: who are the most central members?
    let pr = pagerank(&g, &PageRankConfig::default());
    println!("\nPageRank converged in {} iterations; top members:", pr.iterations);
    for (v, score) in top_k(&pr, 5) {
        let p = &ds.persons[v as usize];
        println!("  {} {} (degree {}): {:.5}", p.first_name, p.last_name, g.degree(v), score);
    }

    // BFS from the top member: how far does the network reach?
    let hub = top_k(&pr, 1)[0].0;
    let stats = bfs_stats(&g, hub);
    println!(
        "\nBFS from the hub: reaches {} persons, eccentricity {}, mean distance {:.2}",
        stats.reached, stats.max_depth, stats.mean_depth
    );

    // Communities: does the homophily of §2.3 show up?
    let lpa = label_propagation(&g, 30);
    let louvain = louvain_communities(&g, 30);
    println!(
        "\ncommunities: label propagation {} (Q={:.3}), louvain {} (Q={:.3})",
        lpa.count,
        modularity(&g, &lpa.labels),
        louvain.count,
        modularity(&g, &louvain.labels)
    );

    // Clustering: correlated friendships close triangles.
    println!(
        "\nclustering: average coefficient {:.3}, {} triangles",
        average_clustering(&g),
        triangle_count(&g)
    );
    let random_cc = 2.0 * g.edge_count() as f64 / (g.vertex_count() as f64).powi(2);
    println!("(an equally dense random graph would score ~{random_cc:.4})");
}
