//! Quickstart: generate a small social network, load it into the store,
//! and run a few interactive queries.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ldbc_snb::core::{PersonId, SimTime};
use ldbc_snb::datagen::{generate, GeneratorConfig};
use ldbc_snb::queries::params::{Q2Params, Q9Params};
use ldbc_snb::queries::{complex, short, Engine};
use ldbc_snb::store::Store;

fn main() {
    // 1. Generate a deterministic social network: 1,000 persons, three
    //    years of correlated activity (friendships, forums, posts,
    //    comments, likes).
    let ds = generate(GeneratorConfig::with_persons(1_000).threads(4).seed(7)).unwrap();
    let stats = ds.stats();
    println!(
        "generated {} persons, {} friendships, {} messages, {} forums",
        stats.persons,
        stats.friends / 2,
        stats.messages,
        stats.forums
    );

    // 2. Bulk-load the first 32 months; the rest becomes the update stream.
    let store = Store::new();
    store.bulk_load(&ds);
    let updates = ds.update_stream();
    println!("bulk-loaded through {}; {} updates pending", ds.config.update_split, updates.len());

    // 3. Apply a few updates transactionally.
    for u in updates.iter().take(500) {
        store.apply(&u.op).unwrap();
    }

    // 4. Query: who is the best-connected person, and what's new in their
    //    feed?
    let snap = store.pinned();
    let busiest = (0..stats.persons).map(PersonId).max_by_key(|&p| snap.friends(p).len()).unwrap();
    let profile = short::s1_profile(&snap, busiest).unwrap();
    println!(
        "\nbusiest person: {} {} ({} friends)",
        profile.first_name,
        profile.last_name,
        snap.friends(busiest).len()
    );

    let feed = complex::q2::run(
        &snap,
        Engine::Intended,
        &Q2Params { person: busiest, max_date: SimTime::SIM_END },
    );
    println!("\ntheir friend feed (Q2, newest 5 of {}):", feed.len());
    for row in feed.iter().take(5) {
        let text: String = row.content.chars().take(56).collect();
        println!("  [{}] {} {}: {}", row.creation_date, row.first_name, row.last_name, text);
    }

    // 5. The same question over the 2-hop circle (Q9) touches far more
    //    data — this asymmetry is the heart of the benchmark's design.
    let q9 = complex::q9::run(
        &snap,
        Engine::Intended,
        &Q9Params { person: busiest, max_date: SimTime::SIM_END },
    );
    println!("\n2-hop feed (Q9) returns {} rows; newest: {}", q9.len(), q9[0].creation_date);
}
