//! A simulated interactive session: the §4 random walk between complex
//! reads and short reads, the way a real social-network client would
//! navigate — open the feed, view a profile, open a post, read replies.
//!
//! ```sh
//! cargo run --release --example social_feed
//! ```

use ldbc_snb::core::rng::{Rng, Stream};
use ldbc_snb::core::{MessageId, PersonId, SimTime};
use ldbc_snb::datagen::{generate, GeneratorConfig};
use ldbc_snb::queries::params::Q9Params;
use ldbc_snb::queries::{complex, short, Engine};
use ldbc_snb::store::Store;

fn main() {
    let ds = generate(GeneratorConfig::with_persons(800).threads(4).seed(11)).unwrap();
    let store = Store::new();
    store.load_full(&ds);
    let snap = store.pinned();

    // The "logged-in user": someone with a decent circle.
    let me =
        (0..ds.persons.len() as u64).map(PersonId).max_by_key(|&p| snap.friends(p).len()).unwrap();
    let profile = short::s1_profile(&snap, me).unwrap();
    println!(
        "logged in as {} {} from city #{}",
        profile.first_name, profile.last_name, profile.city
    );

    // Open the feed: Q9 over the 2-hop circle.
    let feed = complex::q9::run(
        &snap,
        Engine::Intended,
        &Q9Params { person: me, max_date: SimTime::SIM_END },
    );
    println!("\n== feed: {} entries ==", feed.len());
    for row in feed.iter().take(3) {
        println!("  {} {} · {}", row.first_name, row.last_name, row.creation_date);
    }

    // Random-walk into the content, P = 0.9, Δ = 0.15 (§4).
    let mut rng = Rng::for_entity(3, Stream::Workload, 0);
    let mut prob: f64 = 0.9;
    let mut person: Option<PersonId> = feed.first().map(|r| r.author);
    let mut message: Option<MessageId> = feed.first().map(|r| r.message);
    let mut hops = 0;
    println!("\n== random walk ==");
    while rng.chance(prob) {
        hops += 1;
        match (person, message) {
            (Some(p), _) if rng.chance(0.5) => {
                let friends = short::s3_friends(&snap, p);
                println!("  S3 friends of person {}: {} friends", p.raw(), friends.len());
                person = friends.first().map(|&(f, _)| f);
            }
            (_, Some(m)) => {
                let replies = short::s7_replies(&snap, m);
                println!("  S7 replies to message {}: {} replies", m.raw(), replies.len());
                if let Some(r) = replies.first() {
                    person = Some(r.author);
                    message = Some(r.comment);
                } else if let Some((forum, title, _)) = short::s6_forum(&snap, m) {
                    println!("  S6 forum of message {}: {} ({})", m.raw(), title, forum);
                    message = None;
                }
            }
            _ => break,
        }
        prob -= 0.15;
    }
    println!("walk ended after {hops} lookups (probability exhausted)");
}
