//! A complete miniature SNB-Interactive benchmark run: bulk load, then the
//! driver replays the final four months as a mixed workload — updates,
//! Table 4 complex reads, and random-walk short reads — at a target
//! acceleration factor, reporting per-query latencies and whether the run
//! sustained the target (§4, "Rules and Metrics").
//!
//! ```sh
//! cargo run --release --example benchmark_run
//! ```

use ldbc_snb::datagen::{generate, GeneratorConfig};
use ldbc_snb::driver::{build_mix, run, DriverConfig, OpKind, StoreConnector};
use ldbc_snb::params::curated_bindings;
use ldbc_snb::queries::Engine;
use ldbc_snb::store::Store;
use std::sync::Arc;

fn main() {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8);
    let ds = generate(GeneratorConfig::with_persons(1_500).threads(threads).seed(5)).unwrap();
    let store = Arc::new(Store::new());
    store.bulk_load(&ds);

    // Curated parameters for the 14 complex-read templates.
    let bindings = curated_bindings(&ds, 16);
    let items = build_mix(&ds, &bindings);
    println!("workload: {} scheduled operations over 4 months of simulation", items.len());

    // Pick the acceleration so the run takes a few seconds of wall time.
    let sim_span = items.last().unwrap().due.since(items[0].due);
    let accel = sim_span as f64 / 5_000.0; // ~5s of real time
    println!("target acceleration factor: {accel:.0}x (sim ms per real ms)\n");

    let connector = StoreConnector::new(Arc::clone(&store), Engine::Intended);
    let config = DriverConfig {
        partitions: threads,
        acceleration: Some(accel),
        short_read_prob: 0.7,
        short_read_decay: 0.2,
        ..DriverConfig::default()
    };
    let report = run(&items, &connector, &config).expect("benchmark run");

    println!("== run report ==");
    println!("wall time:            {:?}", report.wall);
    println!("operations executed:  {}", report.total_ops);
    println!("throughput:           {:.0} ops/s", report.ops_per_second);
    println!("achieved acceleration:{:.0}x (target {accel:.0}x)", report.achieved_acceleration);
    println!("steady p99:           {}", if report.steady { "yes" } else { "no" });

    println!("\nper-kind latencies (mean / p99):");
    for kind in report.metrics.kinds() {
        let s = report.metrics.stats(kind).unwrap();
        let label = match kind {
            OpKind::Complex(n) => format!("Q{n}"),
            OpKind::Short(n) => format!("S{n}"),
            OpKind::Update(n) => format!("U{n}"),
        };
        println!("  {label:>4}  n={:<6} {:>10.0?} / {:>10.0?}", s.count, s.mean, s.p99);
    }
}
