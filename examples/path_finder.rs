//! Graph-navigation demo: shortest paths (Q13) and weighted shortest paths
//! (Q14) between members of the network — the benchmark's most
//! traversal-heavy queries, plus a peek at the homophily structure §2.3
//! generates.
//!
//! ```sh
//! cargo run --release --example path_finder
//! ```

use ldbc_snb::core::dict::Dictionaries;
use ldbc_snb::core::PersonId;
use ldbc_snb::datagen::{generate, GeneratorConfig};
use ldbc_snb::queries::params::{Q13Params, Q14Params};
use ldbc_snb::queries::{complex, Engine};
use ldbc_snb::store::Store;

fn main() {
    let ds = generate(GeneratorConfig::with_persons(1_200).threads(4).seed(23)).unwrap();
    let store = Store::new();
    store.load_full(&ds);
    let snap = store.pinned();
    let dicts = Dictionaries::global();

    // Sample pairs at increasing "social distance": same city, same
    // country, different continents.
    let by_city = |city: usize| ds.persons.iter().find(|p| p.city == city).map(|p| p.id);
    let a = PersonId(0);
    let pairs: Vec<(PersonId, PersonId, &str)> = [
        (by_city(ds.persons[0].city), "same city"),
        (
            ds.persons.iter().find(|p| p.country != ds.persons[0].country).map(|p| p.id),
            "another country",
        ),
        (Some(PersonId(ds.persons.len() as u64 - 1)), "latest member"),
    ]
    .into_iter()
    .filter_map(|(b, label)| b.filter(|&b| b != a).map(|b| (a, b, label)))
    .collect();

    println!(
        "shortest paths from person {} ({} in {}):\n",
        a.raw(),
        ds.persons[0].first_name,
        dicts.places.country(ds.persons[0].country).name
    );

    for (x, y, label) in pairs {
        let len =
            complex::q13::run(&snap, Engine::Intended, &Q13Params { person_x: x, person_y: y });
        println!("Q13 {} -> {} ({label}): distance {len}", x.raw(), y.raw());
        if (1..=4).contains(&len) {
            let paths =
                complex::q14::run(&snap, Engine::Intended, &Q14Params { person_x: x, person_y: y });
            println!("Q14: {} shortest path(s); top by interaction weight:", paths.len());
            for row in paths.iter().take(3) {
                let ids: Vec<String> = row.path.iter().map(|p| p.raw().to_string()).collect();
                println!("   weight {:>5.1}  {}", row.weight, ids.join(" - "));
            }
        }
        println!();
    }

    // Homophily check: how often do direct friends share a country?
    let same_country = ds
        .knows
        .iter()
        .filter(|k| ds.persons[k.a.index()].country == ds.persons[k.b.index()].country)
        .count();
    println!(
        "homophily: {:.0}% of friendships connect people from the same country",
        100.0 * same_country as f64 / ds.knows.len() as f64
    );
}
